"""The Sampling Management Unit (§III-B, §IV-A).

Maintains one :class:`ContextRecord` per allocation calling context in
the global hash table and adapts its watch probability online:

* **initialization** — every new context starts at 50%;
* **degradation on each allocation** — minus 0.001 percentage points per
  allocation, so high-traffic contexts fade;
* **degradation after each watch** — halved every time an object from
  the context is watched, so scarce watchpoints rotate toward contexts
  with fewer allocations (the SWAT insight the paper cites);
* **floor** — never below 0.001%, so every context keeps some chance;
* **throttle** — more than 5,000 allocations within a 10-second window
  drop the context to 0.0001% until the window elapses;
* **reviving** (§IV-A) — floor-bound contexts are randomly boosted back
  to 0.01% after a period, partially handling input-dependent bugs;
* **evidence boost** (§IV-B) — a context with observed overflow evidence
  is pinned at 100%.

``on_allocation`` runs on *every* interposed allocation, so the unit
keeps a one-entry per-thread (key → record) cache: repeated allocations
from the same site skip the global hash-table walk entirely while still
charging the simulated lookup cost, and all config-derived constants
(the throttle window and revive period in nanoseconds, the probability
bounds) are precomputed at construction instead of per call.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.callstack.contexts import CallingContext, ContextInterner, ContextKey
from repro.core.config import CSODConfig
from repro.core.context_key import ContextHashTable
from repro.core.rng import PerThreadRNG
from repro.machine.clock import NANOS_PER_SECOND, VirtualClock


@dataclass(slots=True)
class ContextRecord:
    """Mutable per-context sampling state."""

    key: ContextKey
    context: CallingContext
    probability: float
    allocation_count: int = 0
    watch_count: int = 0
    # Throttle window bookkeeping.
    window_start_ns: int = 0
    window_alloc_count: int = 0
    throttled_until_ns: int = 0
    # Reviving bookkeeping.
    floor_since_ns: int = -1
    # Evidence: once an overflow is observed for this context, the
    # probability is pinned to 1.0 and never degraded again.
    overflow_observed: bool = False

    def pinned(self) -> bool:
        return self.overflow_observed


class SamplingManagementUnit:
    """Owns the probability table and all adaptation rules."""

    def __init__(
        self,
        config: CSODConfig,
        clock: VirtualClock,
        rng: PerThreadRNG,
        interner: ContextInterner,
        table: Optional[ContextHashTable] = None,
    ):
        self._config = config
        self._clock = clock
        self._rng = rng
        self._interner = interner
        self._table: ContextHashTable[ContextRecord] = (
            table if table is not None else ContextHashTable()
        )
        # Stable signatures of contexts known (from persisted evidence)
        # to overflow; applied when the context is first seen.
        self._known_bad_signatures: Set[str] = set()
        self.total_allocations_seen = 0
        # Hot-path constants, hoisted out of the per-allocation rules.
        self._floor = config.floor_probability
        self._degradation_per_alloc = config.degradation_per_alloc
        self._throttle_threshold = config.throttle_alloc_threshold
        self._throttle_probability = config.throttle_probability
        self._window_ns = int(config.throttle_window_seconds * NANOS_PER_SECOND)
        self._revive_period_ns = int(
            config.revive_period_seconds * NANOS_PER_SECOND
        )
        # One-entry (key → record) cache per thread, as
        # (first_ra, stack_offset, record, context_depth) tuples.  A
        # key's record is created exactly once and never replaced, so
        # entries can never go stale; the cache only short-circuits the
        # Python-level table walk — the simulated lookup cost is still
        # charged.  The cached depth lets the batched driver's collision
        # accounting skip the CallingContext property hop.
        self._thread_cache: Dict[int, Tuple[int, int, ContextRecord, int]] = {}

    # ------------------------------------------------------------------
    # Persisted evidence
    # ------------------------------------------------------------------
    def preload_known_bad(self, signatures: Set[str]) -> None:
        """Install signatures persisted by a previous execution."""
        self._known_bad_signatures |= signatures

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def on_allocation(self, stack, tid: int = 0) -> ContextRecord:
        """Intern the current context and apply per-allocation rules.

        Called by the monitoring unit on *every* allocation, watched or
        not.  ``tid`` is the allocating thread; it selects the one-entry
        cache slot and the RNG stream the revive draw consumes.
        """
        interner = self._interner
        # The cheap key (§III-A1): one return-address peek + the live
        # stack offset.  Decomposed into its two ints so a cache hit
        # never constructs a ContextKey object.
        frame = interner.charge_peek(stack)
        first_ra = frame.return_address if frame is not None else 0
        offset = stack.stack_offset
        cached = self._thread_cache.get(tid)
        if (
            cached is not None
            and cached[0] == first_ra
            and cached[1] == offset
        ):
            record = cached[2]
            interner.note_hit(record.context, stack)
            self._table.charge_hit()
        else:
            key = ContextKey(first_level_ra=first_ra, stack_offset=offset)
            context = interner.intern_keyed(key, stack)
            record = self._table.get(key)
            if record is None:
                record = self._new_record(key, context)
                self._table.put(key, record)
            self._thread_cache[tid] = (
                first_ra,
                offset,
                record,
                len(record.context.return_addresses),
            )
        self.total_allocations_seen += 1
        record.allocation_count += 1
        if not record.overflow_observed:
            self._degrade_on_allocation(record)
            self._update_throttle(record)
            self._maybe_revive(record, tid)
        return record

    def should_watch(self, record: ContextRecord, tid: int) -> bool:
        """One probabilistic draw against the context's probability."""
        # Inlined effective_probability: pinned contexts always watch,
        # and un-throttled contexts (the fast, overwhelmingly common
        # case — every floor-probability context included) go straight
        # to the stored probability without any further rule checks.
        if record.overflow_observed:
            return True
        if record.throttled_until_ns > self._clock.now_ns:
            probability = self._throttle_probability
        else:
            probability = record.probability
        if probability >= 1.0:
            return True
        return self._rng.uniform(tid) < probability

    def on_watched(self, record: ContextRecord) -> None:
        """Degradation after each watch: halve the probability."""
        record.watch_count += 1
        if record.overflow_observed:
            return
        record.probability = self._clamp(
            record.probability * self._config.watch_degradation_factor, record
        )

    def boost_to_certain(self, record: ContextRecord) -> None:
        """Evidence observed: pin at 100% (§IV-B)."""
        record.overflow_observed = True
        record.probability = 1.0
        record.throttled_until_ns = 0
        # The context is no longer floor-bound; stale floor bookkeeping
        # must not make it eligible for a revive draw (which would waste
        # a random number and perturb per-thread draw order).
        record.floor_since_ns = -1

    # ------------------------------------------------------------------
    # Probability views
    # ------------------------------------------------------------------
    def effective_probability(self, record: ContextRecord) -> float:
        """The probability a draw is made against, honouring throttles."""
        if record.overflow_observed:
            return 1.0
        if record.throttled_until_ns > self._clock.now_ns:
            return self._throttle_probability
        return record.probability

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def _new_record(self, key: ContextKey, context: CallingContext) -> ContextRecord:
        probability = self._config.initial_probability
        record = ContextRecord(key=key, context=context, probability=probability)
        signature = context_signature(context)
        if signature in self._known_bad_signatures:
            record.overflow_observed = True
            record.probability = 1.0
        return record

    def _degrade_on_allocation(self, record: ContextRecord) -> None:
        probability = record.probability - self._degradation_per_alloc
        floor = self._floor
        record.probability = floor if probability < floor else probability

    def _update_throttle(self, record: ContextRecord) -> None:
        now = self._clock.now_ns
        window_ns = self._window_ns
        # Windows are half-open [start, start + window): an allocation
        # landing exactly at start + window opens the next window and is
        # counted there — consistent with the ``throttled_until_ns > now``
        # check, under which a throttle expiring at that same instant no
        # longer applies.  (With ``>`` the boundary allocation was counted
        # in the old window, and a throttle it triggered expired
        # immediately, having throttled nothing.)
        if now - record.window_start_ns >= window_ns:
            record.window_start_ns = now
            record.window_alloc_count = 0
        record.window_alloc_count += 1
        if (
            record.window_alloc_count > self._throttle_threshold
            and record.throttled_until_ns <= now
        ):
            # Throttle until the current window elapses; afterwards the
            # probability returns to the lower bound (§III-B2).
            record.throttled_until_ns = record.window_start_ns + window_ns
            record.probability = self._floor

    def _maybe_revive(self, record: ContextRecord, tid: int = 0) -> None:
        if record.probability > self._floor:
            record.floor_since_ns = -1
            return
        now = self._clock.now_ns
        if record.floor_since_ns < 0:
            record.floor_since_ns = now
            return
        if now - record.floor_since_ns < self._revive_period_ns:
            return
        # Random boost: a fraction of floor-bound contexts come back to
        # 0.01% so input-dependent bugs stay reachable (§IV-A).  The
        # draw comes from the *allocating thread's* stream — consuming
        # thread 0's stream here would corrupt per-thread determinism.
        record.floor_since_ns = now
        if self._rng.uniform(tid) < self._config.revive_chance:
            record.probability = self._config.revive_probability

    def _clamp(self, probability: float, record: ContextRecord) -> float:
        # A pinned context (observed overflow evidence) can never decay
        # below its pin: whatever rule produced ``probability``, the
        # evidence boost dominates (§IV-B).
        if record.overflow_observed:
            return 1.0
        floor = self._floor
        return max(floor, min(1.0, probability))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def record_for(self, key: ContextKey) -> Optional[ContextRecord]:
        return self._table.get(key)

    def records(self) -> Iterator[ContextRecord]:
        return self._table.values()

    def context_count(self) -> int:
        return len(self._table)

    @property
    def table(self) -> ContextHashTable:
        return self._table

    @property
    def interner(self) -> ContextInterner:
        return self._interner


# ----------------------------------------------------------------------
# Pure transition model (the adversarial solver's search space)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplerState:
    """A pure snapshot of one context's sampling state.

    The adversarial solver (``repro.oracle.adversarial``) bounded-model-
    checks allocation sequences against the unit's transition relation
    without instantiating a runtime; the module-level transitions below
    restate the rules above as pure functions over this state.  The
    parity tests in ``tests/core/test_sampler_model.py`` pin each one
    against the live :class:`SamplingManagementUnit`, so the solver can
    trust the abstract model.
    """

    probability: float
    window_start_ns: int = 0
    window_alloc_count: int = 0
    throttled_until_ns: int = 0
    floor_since_ns: int = -1


def throttle_window_ns(config: CSODConfig) -> int:
    return int(config.throttle_window_seconds * NANOS_PER_SECOND)


def revive_period_ns(config: CSODConfig) -> int:
    return int(config.revive_period_seconds * NANOS_PER_SECOND)


def initial_state(config: CSODConfig) -> SamplerState:
    """A context on first sight (no evidence preloaded)."""
    return SamplerState(probability=config.initial_probability)


def degrade_transition(state: SamplerState, config: CSODConfig) -> SamplerState:
    """``_degrade_on_allocation``: minus one step, floor-clamped."""
    floor = config.floor_probability
    probability = state.probability - config.degradation_per_alloc
    return replace(
        state, probability=floor if probability < floor else probability
    )


def throttle_transition(
    state: SamplerState, now_ns: int, config: CSODConfig
) -> SamplerState:
    """``_update_throttle``: half-open window roll, count, engage."""
    window_ns = throttle_window_ns(config)
    window_start = state.window_start_ns
    count = state.window_alloc_count
    if now_ns - window_start >= window_ns:
        window_start = now_ns
        count = 0
    count += 1
    probability = state.probability
    throttled_until = state.throttled_until_ns
    if count > config.throttle_alloc_threshold and throttled_until <= now_ns:
        throttled_until = window_start + window_ns
        probability = config.floor_probability
    return replace(
        state,
        probability=probability,
        window_start_ns=window_start,
        window_alloc_count=count,
        throttled_until_ns=throttled_until,
    )


def revive_transition(
    state: SamplerState, now_ns: int, config: CSODConfig
) -> Tuple[SamplerState, bool]:
    """``_maybe_revive``'s bookkeeping; returns ``(state', draw_made)``.

    The random draw itself is the solver's free variable (the live unit
    consumes the allocating thread's stream); ``draw_made`` says whether
    this allocation reaches it.
    """
    if state.probability > config.floor_probability:
        return replace(state, floor_since_ns=-1), False
    if state.floor_since_ns < 0:
        return replace(state, floor_since_ns=now_ns), False
    if now_ns - state.floor_since_ns < revive_period_ns(config):
        return state, False
    return replace(state, floor_since_ns=now_ns), True


def watch_transition(state: SamplerState, config: CSODConfig) -> SamplerState:
    """``on_watched``: halve, clamped to [floor, 1.0]."""
    probability = state.probability * config.watch_degradation_factor
    probability = max(config.floor_probability, min(1.0, probability))
    return replace(state, probability=probability)


def allocation_transition(
    state: SamplerState,
    now_ns: int,
    config: CSODConfig,
    watched: bool = False,
) -> Tuple[SamplerState, bool]:
    """One full un-pinned allocation step, optionally watched.

    Mirrors ``on_allocation``'s rule order (degrade, throttle, revive)
    followed by ``on_watched`` when the object ends up watched — which,
    with a free debug register, it always does ("installation due to
    availability"), regardless of the draw.  Returns
    ``(state', revive_draw_made)``.
    """
    state = degrade_transition(state, config)
    state = throttle_transition(state, now_ns, config)
    state, draw_made = revive_transition(state, now_ns, config)
    if watched:
        state = watch_transition(state, config)
    return state, draw_made


def allocations_to_floor(config: CSODConfig, bound: int = 4096) -> int:
    """Minimal watched-allocation count pinning a fresh context at the
    floor *exactly* (no clock advance between allocations), or -1 if
    ``bound`` steps do not reach it.

    With the paper's constants this is 16: the halving dominates the
    linear degradation, and the clamp lands on the floor exactly.
    """
    state = initial_state(config)
    for count in range(1, bound + 1):
        state, _ = allocation_transition(state, 0, config, watched=True)
        if state.probability <= config.floor_probability:
            return count
    return -1


def context_signature(context: CallingContext) -> str:
    """A signature stable across executions (for evidence persistence).

    Synthetic return addresses differ between runs, so persistence keys
    on source locations — the analogue of the paper writing calling
    contexts to a file and matching them in future executions.
    """
    if context.frames:
        return "|".join(frame.site.location() for frame in context.frames)
    return "|".join(hex(ra) for ra in context.return_addresses)
