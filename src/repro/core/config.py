"""CSOD's tunable parameters.

The paper states that its probability constants "are pre-defined macros
used at compilation time, which could be further adjusted based on the
behavior of programs" (§III-B2).  :class:`CSODConfig` is the runtime
analogue of those macros; every published constant is the default here,
and the ablation benchmarks sweep them.

All probabilities are stored as fractions (the paper writes percent):
50% -> 0.5, 0.001% -> 1e-5, 0.0001% -> 1e-6, 0.01% -> 1e-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import CSODError

POLICY_NAIVE = "naive"
POLICY_RANDOM = "random"
POLICY_NEAR_FIFO = "near_fifo"

ReplacementPolicyName = str

_VALID_POLICIES = (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO)

HOTPATH_BATCHED = "batched"
HOTPATH_LEGACY = "legacy"

_VALID_HOTPATHS = (HOTPATH_BATCHED, HOTPATH_LEGACY)


@dataclass(frozen=True)
class CSODConfig:
    """All knobs of the CSOD runtime, defaulting to the paper's values."""

    # --- Sampling Management Unit (§III-B2) ---------------------------
    # Every calling context starts at 50%: "treated by CSOD as if it were
    # equally likely to either contain a bug or be bug-free."
    initial_probability: float = 0.5
    # Degradation on each allocation: 0.001 percentage points.
    degradation_per_alloc: float = 1e-5
    # Degradation after each watch: multiply by 1/2.
    watch_degradation_factor: float = 0.5
    # Lower bound: 0.001%.
    floor_probability: float = 1e-5
    # Throttle: contexts with > 5,000 allocations within 10 seconds drop
    # to 0.0001% until the window elapses.
    throttle_alloc_threshold: int = 5000
    throttle_window_seconds: float = 10.0
    throttle_probability: float = 1e-6

    # --- Reviving mechanism (§IV-A) ------------------------------------
    # Floor-bound contexts are randomly boosted to 0.01% after a period.
    revive_probability: float = 1e-4
    revive_period_seconds: float = 30.0
    revive_chance: float = 0.1

    # --- Watchpoint Management Unit (§III-C2) --------------------------
    replacement_policy: ReplacementPolicyName = POLICY_NEAR_FIFO
    # §V-B future work: combine the eight install/remove syscalls per
    # thread into one custom syscall.  Off by default (the paper's
    # deployed configuration runs on an unmodified kernel).
    batched_syscalls: bool = False
    # Disable the watchpoints entirely: what remains is a
    # HeapTherapy-style evidence-only detector (canaries checked at free
    # and exit).  It catches over-writes after the fact, with no faulting
    # statement and no over-read coverage — the §VII comparison.
    watchpoints_enabled: bool = True
    # An installed watchpoint's effective probability halves per aging
    # period: "an object without overflows for an extended period will
    # likely have a lower chance of experiencing overflows in the future."
    watchpoint_age_seconds: float = 10.0

    # --- Evidence-based detection (§IV-B) ------------------------------
    evidence_enabled: bool = True
    # Where overflowing contexts are persisted across executions; None
    # disables persistence (in-process evidence still works).
    persistence_path: Optional[str] = None

    # --- Simulator implementation (not a paper knob) -------------------
    # Which per-allocation driver the runtime uses.  "batched" fuses the
    # sampling/canary/watchpoint steps into one flat routine that charges
    # precompiled cost bundles; "legacy" dispatches unit by unit with one
    # ledger record per event.  Both paths produce identical ledgers,
    # clocks, and reports (pinned by the equivalence harness); "legacy"
    # exists as the reference and for instrumentation that hooks the
    # individual unit methods.
    hotpath: str = HOTPATH_BATCHED

    def __post_init__(self):
        if self.hotpath not in _VALID_HOTPATHS:
            raise CSODError(
                f"unknown hotpath {self.hotpath!r}; "
                f"expected one of {_VALID_HOTPATHS}"
            )
        if self.replacement_policy not in _VALID_POLICIES:
            raise CSODError(
                f"unknown replacement policy {self.replacement_policy!r}; "
                f"expected one of {_VALID_POLICIES}"
            )
        for name in (
            "initial_probability",
            "degradation_per_alloc",
            "watch_degradation_factor",
            "floor_probability",
            "throttle_probability",
            "revive_probability",
            "revive_chance",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CSODError(f"{name} must be in [0, 1], got {value}")
        if self.throttle_alloc_threshold <= 0:
            raise CSODError("throttle_alloc_threshold must be positive")
        if self.throttle_window_seconds <= 0:
            raise CSODError("throttle_window_seconds must be positive")
        if self.watchpoint_age_seconds <= 0:
            raise CSODError("watchpoint_age_seconds must be positive")
        if self.floor_probability > self.initial_probability:
            raise CSODError("floor probability exceeds the initial probability")

    def without_evidence(self) -> "CSODConfig":
        """The "CSOD w/o Evidence" configuration of Fig. 7."""
        # dataclasses.replace re-runs __init__, so subclasses with
        # non-init (derived) fields still clone correctly.
        return replace(self, evidence_enabled=False, persistence_path=None)

    def with_policy(self, policy: ReplacementPolicyName) -> "CSODConfig":
        """The same configuration under a different replacement policy."""
        return replace(self, replacement_policy=policy)

    def with_hotpath(self, hotpath: str) -> "CSODConfig":
        """The same configuration under a different hot-path driver."""
        return replace(self, hotpath=hotpath)
