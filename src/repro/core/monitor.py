"""The Alloc/Dealloc Monitoring Unit (§III-A).

This is the interposed ``malloc``/``free`` — the entry point of the
whole runtime.  On every allocation it:

1. obtains the calling context's record from the Sampling Management
   Unit (cheap key lookup; full backtrace only on first sight),
2. draws a per-thread random number against the context's probability,
3. wraps the object with header+canary when evidence mode is on, and
4. asks the Watchpoint Management Unit to watch the object — always
   when a watchpoint is free ("installation due to availability"),
   otherwise only when the draw passed, via the replacement policy.

On every deallocation it removes the object's watchpoint if present and,
in evidence mode, verifies the canary; a corrupted canary boosts the
context to 100% immediately (§IV-B).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.canary import CanaryManagementUnit
from repro.core.config import CSODConfig
from repro.core.reporting import (
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_FREE_CANARY,
)
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.core.watchpoints import WatchpointManagementUnit
from repro.heap.interpose import RawHeap
from repro.heap.layout import CSOD_HEADER_SIZE
from repro.machine.threads import SimThread

ReportSink = Callable[[OverflowReport], None]


class AllocDeallocMonitoringUnit:
    """The interposed allocation/deallocation routines."""

    def __init__(
        self,
        config: CSODConfig,
        raw: RawHeap,
        sampling: SamplingManagementUnit,
        wmu: WatchpointManagementUnit,
        canary: Optional[CanaryManagementUnit],
        rng: PerThreadRNG,
        clock,
        sink: ReportSink,
    ):
        self._config = config
        self._raw = raw
        self._sampling = sampling
        self._wmu = wmu
        self._canary = canary
        self._rng = rng
        self._clock = clock
        self._sink = sink
        self.allocation_count = 0
        self.free_count = 0
        if config.evidence_enabled and canary is None:
            raise ValueError("evidence mode requires a canary unit")

    # ------------------------------------------------------------------
    # malloc / memalign
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        self.allocation_count += 1
        record = self._sampling.on_allocation(thread.call_stack, thread.tid)
        if self._config.evidence_enabled:
            object_address = self._canary.wrap_allocation(thread, size, record)
        else:
            object_address = self._raw.malloc(thread, size)
        self._consider_watching(thread, object_address, size, record)
        return object_address

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        self.allocation_count += 1
        record = self._sampling.on_allocation(thread.call_stack, thread.tid)
        if self._config.evidence_enabled:
            object_address = self._canary.wrap_memalign(
                thread, alignment, size, record
            )
        else:
            object_address = self._raw.memalign(thread, alignment, size)
        self._consider_watching(thread, object_address, size, record)
        return object_address

    def _consider_watching(
        self, thread: SimThread, object_address: int, size: int, record
    ) -> None:
        if not self._config.watchpoints_enabled:
            return  # evidence-only (HeapTherapy-style) configuration
        # The randomization draw happens on every allocation — it is one
        # of the three per-allocation costs the paper's §V-B attributes
        # CSOD's overhead to.
        draw_passed = self._sampling.should_watch(record, thread.tid)
        watch_address = object_address + size  # the boundary word
        self._wmu.try_watch(
            thread,
            object_address,
            size,
            watch_address,
            record,
            probability_checked=draw_passed,
        )

    # ------------------------------------------------------------------
    # free
    # ------------------------------------------------------------------
    def free(self, thread: SimThread, address: int) -> None:
        self.free_count += 1
        # "Upon every deallocation, CSOD checks whether the current
        # object is being watched.  If yes, the corresponding watchpoint
        # will be removed."
        self._wmu.on_deallocation(address)
        if not self._config.evidence_enabled:
            self._raw.free(thread, address)
            return
        if self._canary.lookup(address) is None:
            # Not a CSOD-wrapped object: allocated before interposition
            # was enabled (or by a bypassing allocator).  The real
            # runtime's identifier check falls through to the underlying
            # free; crashing here would take the application down.
            self._raw.free(thread, address)
            return
        entry, corrupted = self._canary.check_object(address)
        if corrupted:
            self._sampling.boost_to_certain(entry.record)
            self._sink(
                OverflowReport(
                    kind=KIND_OVER_WRITE,
                    source=SOURCE_FREE_CANARY,
                    fault_address=address + entry.object_size,
                    object_address=address,
                    object_size=entry.object_size,
                    thread_id=thread.tid,
                    time_ns=self._clock.now_ns,
                    allocation_context=entry.record.context,
                )
            )
        self._canary.release(address)
        self._raw.free(thread, entry.real_object_ptr)

    # ------------------------------------------------------------------
    # realloc
    # ------------------------------------------------------------------
    def realloc(self, thread: SimThread, address: int, new_size: int) -> int:
        """The interposed realloc.

        A shrink (or same-size resize) of an evidence-wrapped object is
        done *in place*: the header's ObjectSize word is rewritten and a
        fresh canary implanted at the new end, so the header-table slot
        survives with no allocator traffic.  The boundary watchpoint, if
        armed, moves to the new boundary through a remove + re-consider
        pair — one sampling draw, exactly as a malloc of the new size
        would pay.  Grows and non-wrapped pointers fall back to
        allocate-copy-free through the interposed malloc/free, which on
        the batched driver dispatch to the compiled fast paths.
        """
        if address == 0:
            return self.malloc(thread, new_size)
        if new_size == 0:
            self.free(thread, address)
            return 0
        if self._config.evidence_enabled:
            entry = self._canary.lookup(address)
            if entry is not None and new_size <= entry.object_size:
                slot = self._canary.slot_of(address)
                # The shrink abandons the old canary word; verify it
                # first so evidence of an earlier over-write is not
                # silently erased by the resize.
                if self._canary.check_slot(slot):
                    self._sampling.boost_to_certain(entry.record)
                    self._sink(
                        OverflowReport(
                            kind=KIND_OVER_WRITE,
                            source=SOURCE_FREE_CANARY,
                            fault_address=address + entry.object_size,
                            object_address=address,
                            object_size=entry.object_size,
                            thread_id=thread.tid,
                            time_ns=self._clock.now_ns,
                            allocation_context=entry.record.context,
                        )
                    )
                self._wmu.on_deallocation(address)
                self._canary.resize_slot(slot, new_size)
                self._consider_watching(thread, address, new_size, entry.record)
                return address
        old_size = self.usable_size(address)
        new_address = self.malloc(thread, new_size)
        memory = self._raw._machine.memory
        payload = memory.read_bytes(address, min(old_size, new_size))
        memory.write_bytes(new_address, payload)
        self.free(thread, address)
        return new_address

    # ------------------------------------------------------------------
    # malloc_usable_size
    # ------------------------------------------------------------------
    def usable_size(self, address: int) -> int:
        if self._config.evidence_enabled:
            entry = self._canary.lookup(address)
            if entry is not None:
                return entry.object_size
        return self._raw.usable_size(address)
