"""The assembled CSOD runtime (Fig. 1).

:class:`CSODRuntime` wires the six units over a simulated machine and
preloads itself into the process's allocation path — the ``LD_PRELOAD``
moment.  After the workload runs, ``shutdown()`` performs the exit-time
canary sweep and persistence; ``reports`` then holds every detected
overflow and ``stats()`` the counters the experiment drivers consume
(contexts seen, allocations, watched-times, syscall counts, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import ContextInterner
from repro.core.canary import CanaryManagementUnit
from repro.core.config import CSODConfig, HOTPATH_BATCHED
from repro.core.context_key import ContextHashTable
from repro.core.fastpath import FastAllocDealloc
from repro.core.monitor import AllocDeallocMonitoringUnit
from repro.core.reporting import (
    KIND_DOUBLE_FREE,
    OverflowReport,
    SOURCE_HEADER_STATE,
    SOURCE_WATCHPOINT,
)
from repro.core.rng import PerThreadRNG
from repro.core.sampling import SamplingManagementUnit
from repro.core.signal_unit import SignalHandlingUnit
from repro.core.termination import TerminationHandlingUnit, load_persisted
from repro.core.watchpoints import WatchpointManagementUnit
from repro.heap.interpose import LibraryInterposer
from repro.machine.machine import Machine
from repro.machine.threads import SimThread


@dataclass
class CSODStats:
    """Counters for the evaluation tables."""

    allocations: int
    frees: int
    contexts: int
    watched_times: int  # Table IV's "WT" column
    replacements: int
    declined: int
    traps_handled: int
    canary_corruptions: int
    live_objects: int


class CSODRuntime:
    """The drop-in detection library."""

    def __init__(
        self,
        machine: Machine,
        interposer: LibraryInterposer,
        config: Optional[CSODConfig] = None,
        seed: int = 0,
    ):
        self.machine = machine
        self.config = config or CSODConfig()
        self.reports: List[OverflowReport] = []

        ledger = machine.ledger
        raw = interposer.raw
        self._interposer = interposer

        self.rng = PerThreadRNG(seed, ledger)
        self.backtracer = Backtracer(ledger)
        self.interner = ContextInterner(self.backtracer)
        self.sampling = SamplingManagementUnit(
            self.config,
            machine.clock,
            self.rng,
            self.interner,
            ContextHashTable(ledger=ledger),
        )
        self.wmu = WatchpointManagementUnit(
            self.config,
            machine.perf,
            machine.threads,
            machine.clock,
            self.sampling,
            self.rng,
            ledger,
        )
        # Signal handler before any watchpoint can be installed (§III-C1).
        self.signal_unit = SignalHandlingUnit(
            machine.signals,
            self.wmu,
            self.sampling,
            self.backtracer,
            machine.clock,
            self.reports.append,
        )
        self.canary: Optional[CanaryManagementUnit] = None
        self.termination: Optional[TerminationHandlingUnit] = None
        if self.config.evidence_enabled:
            self.canary = CanaryManagementUnit(machine, raw, self.rng)
            self.termination = TerminationHandlingUnit(
                machine.signals,
                self.canary,
                self.sampling,
                machine.clock,
                self.reports.append,
                self.config.persistence_path,
            )
            # Load evidence recorded by previous executions: those
            # contexts start at 100% and are watched from the first
            # allocation onward.
            persisted = load_persisted(self.config.persistence_path)
            if persisted:
                self.sampling.preload_known_bad(persisted)
        # The batched driver covers the full (evidence + watchpoints)
        # configuration; reduced configurations use the legacy unit
        # regardless of the hotpath flag.
        monitor_cls = AllocDeallocMonitoringUnit
        if (
            self.config.hotpath == HOTPATH_BATCHED
            and self.config.evidence_enabled
            and self.config.watchpoints_enabled
        ):
            monitor_cls = FastAllocDealloc
        self.monitor = monitor_cls(
            self.config,
            raw,
            self.sampling,
            self.wmu,
            self.canary,
            self.rng,
            machine.clock,
            self.reports.append,
        )
        interposer.preload(self.monitor)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> List[OverflowReport]:
        """End-of-execution duties: exit sweep, persistence, teardown."""
        exit_reports: List[OverflowReport] = []
        if self.termination is not None:
            exit_reports = self.termination.on_exit()
        self.wmu.remove_all()
        self._interposer.unload()
        return exit_reports

    # ------------------------------------------------------------------
    # Post-hoc diagnosis
    # ------------------------------------------------------------------
    def diagnose_invalid_free(self, thread: SimThread, address: int) -> bool:
        """Attribute an allocator abort on ``address`` to a double free.

        Called after the underlying allocator raised
        :class:`~repro.errors.InvalidFreeError` (the crash-handler
        moment).  In evidence mode the 32-byte header written before
        the object survives the first free — release is pure
        bookkeeping, the words are never scrubbed — so an intact
        identifier at ``address - 32`` proves the pointer was a live
        CSOD object once and this free is its second.  The header's
        context word then recovers the allocation context.  Without
        evidence mode there is no header and no attribution.
        """
        if self.canary is None:
            return False
        from repro.callstack.contexts import CallingContext
        from repro.errors import MachineError
        from repro.heap import layout

        try:
            words = layout.read_header_words(self.machine.memory, address)
        except MachineError:
            return False
        if words[3] != layout.HEADER_IDENTIFIER:
            return False
        context_ptr = words[2]
        allocation_context = CallingContext(
            return_addresses=(context_ptr,)
        )
        for record in self.sampling.records():
            if record.key.first_level_ra == context_ptr:
                allocation_context = record.context
                break
        self.reports.append(
            OverflowReport(
                kind=KIND_DOUBLE_FREE,
                source=SOURCE_HEADER_STATE,
                fault_address=address,
                object_address=address,
                object_size=words[1],
                thread_id=thread.tid,
                time_ns=self.machine.clock.now_ns,
                allocation_context=allocation_context,
            )
        )
        return True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        """Whether any overflow was detected this execution."""
        return bool(self.reports)

    @property
    def detected_by_watchpoint(self) -> bool:
        return any(r.source == SOURCE_WATCHPOINT for r in self.reports)

    def stats(self) -> CSODStats:
        return CSODStats(
            allocations=self.monitor.allocation_count,
            frees=self.monitor.free_count,
            contexts=self.sampling.context_count(),
            watched_times=self.wmu.install_count,
            replacements=self.wmu.replace_count,
            declined=self.wmu.declined_count,
            traps_handled=self.signal_unit.traps_handled,
            canary_corruptions=(
                self.canary.corruption_count if self.canary else 0
            ),
            live_objects=self.canary.live_count() if self.canary else 0,
        )
