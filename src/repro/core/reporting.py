"""Overflow reports (Fig. 6).

A CSOD report carries *two* calling contexts: the context of the
overflowing access (collected by ``backtrace`` inside the signal
handler) and the allocation context of the overflowed object (retrieved
from the watchpoint's metadata).  When symbols are available, each level
prints as ``MODULE/file:line``; stripped modules print raw addresses —
exactly the behaviour of §III-D2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.callstack.contexts import CallingContext
from repro.callstack.frames import Frame
from repro.callstack.symbols import SymbolTable

KIND_OVER_READ = "over-read"
KIND_OVER_WRITE = "over-write"
KIND_DOUBLE_FREE = "double-free"

SOURCE_WATCHPOINT = "watchpoint"
SOURCE_FREE_CANARY = "free-canary"
SOURCE_EXIT_CANARY = "exit-canary"
# Post-hoc diagnosis from the surviving 32-byte object header after
# the allocator aborts on an invalid free (double-free attribution).
SOURCE_HEADER_STATE = "header-state"

# Frames kept by the coarse (triage) signature.  Three levels is deep
# enough to separate allocation wrappers from their callers and shallow
# enough that per-execution stack jitter below the wrapper collapses.
COARSE_SIGNATURE_FRAMES = 3


def coarse_signature_of(
    kind: str,
    allocation_frames,
    access_frames=(),
    top_k: int = COARSE_SIGNATURE_FRAMES,
) -> str:
    """The clustering key shared by reports of one bug.

    Built from the *top-K symbolized frames of the allocation context*
    only: the allocation site identifies the overflowed object, while
    the access side varies with how the bug was caught (a watchpoint
    trap carries the faulting stack, canary evidence carries none) and
    with input-driven jitter deeper in the stack.  ``access_frames`` is
    accepted for signature parity but deliberately unused.
    """
    del access_frames  # identity comes from the allocation side only
    frames = tuple(str(frame) for frame in allocation_frames)[:top_k]
    return kind + "|alloc:" + (">".join(frames) if frames else "-")


@dataclass(frozen=True)
class OverflowReport:
    """One detected buffer overflow."""

    kind: str  # over-read / over-write
    source: str  # watchpoint / free-canary / exit-canary
    fault_address: int
    object_address: int
    object_size: int
    thread_id: int
    time_ns: int
    allocation_context: CallingContext
    access_return_addresses: Tuple[int, ...] = ()
    access_frames: Tuple[Frame, ...] = ()

    def render(self, symbols: Optional[SymbolTable] = None) -> str:
        """Render in the paper's Fig. 6 layout."""
        lines = [f"A buffer {self.kind} problem is detected at:"]
        lines.extend(self._render_access(symbols))
        lines.append("")
        lines.append("This object is allocated at:")
        lines.extend(self._render_context(self.allocation_context, symbols))
        return "\n".join(lines)

    def _render_access(self, symbols: Optional[SymbolTable]) -> list:
        if self.source != SOURCE_WATCHPOINT:
            # Canary evidence has no faulting statement — the overflow is
            # discovered after the fact, at free or exit time.
            return [f"(evidence: corrupted canary found at {self.source})"]
        if not self.access_return_addresses:
            return [f"(access at {self.fault_address:#x})"]
        if symbols is None:
            return [hex(ra) for ra in self.access_return_addresses]
        return symbols.symbolize(self.access_return_addresses)

    @staticmethod
    def _render_context(
        context: CallingContext, symbols: Optional[SymbolTable]
    ) -> list:
        if not context.return_addresses:
            return ["(unknown allocation context)"]
        if symbols is None:
            return [hex(ra) for ra in context.return_addresses]
        return symbols.symbolize(context.return_addresses)

    def signature(self) -> str:
        """A stable identity for fleet-wide deduplication.

        Two reports of the same bug raised by different executions (or
        different machines) must collapse to one signature, so it is
        built from (kind, allocation context, access context) only —
        never from addresses, thread ids, or timestamps, which vary per
        execution.  Source locations are preferred over synthetic
        return addresses for the same reason evidence persistence keys
        on them (see :func:`repro.core.sampling.context_signature`).
        """
        return "|".join(
            (
                self.kind,
                "alloc:" + self._stable_context_lines(
                    self.allocation_context.frames,
                    self.allocation_context.return_addresses,
                ),
                "access:" + self._stable_context_lines(
                    self.access_frames, self.access_return_addresses
                ),
            )
        )

    def coarse_signature(self, top_k: int = COARSE_SIGNATURE_FRAMES) -> str:
        """The triage clustering key: kind + top-K allocation frames.

        Where :meth:`signature` separates every distinct (allocation,
        access) pair — including the same bug caught by a watchpoint
        versus by a corrupted canary — the coarse signature keeps only
        the top-K symbolized allocation frames, so jittered stacks and
        different evidence sources for one bug collapse together.
        Falls back to raw return addresses for stripped modules, same
        as :meth:`signature`.
        """
        frames = self.allocation_context.frames
        if frames:
            return coarse_signature_of(self.kind, frames[:top_k], top_k=top_k)
        addresses = self.allocation_context.return_addresses[:top_k]
        tail = ">".join(hex(ra) for ra in addresses) if addresses else "-"
        return self.kind + "|alloc:" + tail

    @staticmethod
    def _stable_context_lines(frames, return_addresses) -> str:
        if frames:
            return ">".join(frame.site.location() for frame in frames)
        if return_addresses:
            return ">".join(hex(ra) for ra in return_addresses)
        return "-"

    def to_dict(self, symbols: Optional[SymbolTable] = None) -> dict:
        """A JSON-ready form (the crash-backend upload format)."""
        def lines(addresses):
            if symbols is None:
                return [hex(ra) for ra in addresses]
            return symbols.symbolize(addresses)

        return {
            "kind": self.kind,
            "source": self.source,
            "signature": self.signature(),
            "coarse_signature": self.coarse_signature(),
            "fault_address": self.fault_address,
            "object_address": self.object_address,
            "object_size": self.object_size,
            "thread_id": self.thread_id,
            "time_ns": self.time_ns,
            "access_context": lines(self.access_return_addresses),
            "allocation_context": lines(self.allocation_context.return_addresses),
        }

    def summary(self) -> str:
        """One-line form for logs and experiment tallies."""
        top = (
            str(self.access_frames[0])
            if self.access_frames
            else f"{self.fault_address:#x}"
        )
        return (
            f"{self.kind} via {self.source} at {top} "
            f"(object {self.object_address:#x}, {self.object_size}B, "
            f"thread {self.thread_id})"
        )
