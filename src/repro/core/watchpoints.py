"""The Watchpoint Management Unit (§III-C).

Owns CSOD's logical view of the four hardware watchpoints and drives
their installation, replacement, and removal through the machine's
``perf_event_open`` protocol — one event per watchpoint *per alive
thread*, because "there is no way to know which thread will cause an
overflow later" (Fig. 3).

Installation performs, per thread: ``perf_event_open`` + three
``fcntl``\\ s (``F_GETFL``/``F_SETFL``+``F_SETSIG``+``F_SETOWN``) +
``ioctl(ENABLE)``; removal performs ``ioctl(DISABLE)`` + ``close`` — the
"eight system calls ... for each thread" the paper's overhead analysis
counts (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import CSODConfig, HOTPATH_BATCHED
from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.rng import PerThreadRNG
from repro.core.sampling import ContextRecord, SamplingManagementUnit
from repro.machine.clock import NANOS_PER_SECOND, VirtualClock
from repro.machine.debug_registers import NUM_USABLE_DEBUG_REGISTERS
from repro.machine.perf_events import (
    F_GETFL,
    F_SETFL,
    F_SETOWN,
    F_SETSIG,
    HW_BREAKPOINT_RW,
    PERF_EVENT_IOC_DISABLE,
    PERF_EVENT_IOC_ENABLE,
    PerfEventAttr,
    PerfEventManager,
)
from repro.machine.signals import SIGTRAP
from repro.machine.syscall_cost import (
    CostLedger,
    EVENT_WATCH_INSTALL,
    EVENT_WATCH_REMOVE,
)
from repro.machine.threads import SimThread, ThreadRegistry


@dataclass(slots=True)
class WatchedObject:
    """Everything CSOD tracks for one watched heap object."""

    object_address: int
    object_size: int
    watch_address: int  # the boundary/canary word
    record: ContextRecord
    install_time_ns: int
    # "The probability of the new OBJECT": frozen at installation and
    # decayed only by age — replacement compares object probabilities,
    # not the live (already watch-halved) context probability (§III-C2).
    install_probability: float = 0.0
    slot_index: int = -1
    # One perf-event fd per alive thread the watchpoint is armed on.
    fds: Dict[int, int] = field(default_factory=dict)


class WatchpointManagementUnit:
    """Installation, replacement, and removal of the four watchpoints."""

    def __init__(
        self,
        config: CSODConfig,
        perf: PerfEventManager,
        threads: ThreadRegistry,
        clock: VirtualClock,
        sampling: SamplingManagementUnit,
        rng: PerThreadRNG,
        ledger: CostLedger,
    ):
        self._config = config
        self._perf = perf
        self._threads = threads
        self._clock = clock
        self._sampling = sampling
        self._rng = rng
        self._ledger = ledger
        self._slots: List[Optional[WatchedObject]] = [
            None
        ] * NUM_USABLE_DEBUG_REGISTERS
        # object address -> WatchedObject, mirroring the occupied slots:
        # the per-deallocation "is this object watched?" probe is one
        # dict hit instead of a four-slot scan.
        self._by_address: Dict[int, WatchedObject] = {}
        self._policy: ReplacementPolicy = make_policy(
            config.replacement_policy, NUM_USABLE_DEBUG_REGISTERS
        )
        # The batched hot path charges each Fig. 3/Fig. 4 sequence as one
        # precompiled bundle; the legacy path replays it syscall by
        # syscall.  Ledger totals are identical either way.
        self._fast = config.hotpath == HOTPATH_BATCHED
        self.install_count = 0
        self.replace_count = 0
        self.declined_count = 0
        self.fd_comparisons = 0  # signal-handler fd matching work
        # Arm/disarm decisions are batched per scheduler quantum: the
        # alive-tid list every installation targets is recomputed only
        # when thread churn invalidates it, not per allocation.
        self._alive_tids: Optional[List[int]] = None
        self._alive_list: List[SimThread] = []
        # Watchpoints must outlive thread churn: arm on every new thread.
        threads.on_create(self._on_thread_created)
        threads.on_exit(self._on_thread_exited)

    # ------------------------------------------------------------------
    # Installation entry point
    # ------------------------------------------------------------------
    def try_watch(
        self,
        thread: SimThread,
        object_address: int,
        object_size: int,
        watch_address: int,
        record: ContextRecord,
        probability_checked: bool,
    ) -> Optional[WatchedObject]:
        """Attempt to watch an object; returns the watch on success.

        ``probability_checked`` is True when the caller already passed a
        sampling draw; a free slot is used unconditionally either way
        ("installation due to availability", §III-B2), but replacement is
        attempted only for candidates that passed the draw.
        """
        free_index = self._free_slot()
        if free_index is not None:
            return self._install(
                free_index, object_address, object_size, watch_address, record
            )
        if not probability_checked:
            return None
        candidate_probability = self._sampling.effective_probability(record)
        victim_index = self._policy.select_victim(
            self._occupied_view(), candidate_probability, self._rng, thread.tid
        )
        if victim_index is None:
            self.declined_count += 1
            return None
        victim = self._slots[victim_index]
        assert victim is not None
        self._remove(victim)
        self.replace_count += 1
        self._policy.on_replaced(victim_index)
        return self._install(
            victim_index, object_address, object_size, watch_address, record
        )

    # ------------------------------------------------------------------
    # Deallocation / lookup
    # ------------------------------------------------------------------
    def on_deallocation(self, object_address: int) -> bool:
        """Remove the watchpoint if this object is being watched."""
        watched = self._by_address.get(object_address)
        if watched is None:
            return False
        index = watched.slot_index
        self._remove(watched)
        self._policy.on_freed(index)
        return True

    def find_by_object_address(self, object_address: int) -> Optional[WatchedObject]:
        return self._by_address.get(object_address)

    def find_by_fd(self, fd: int) -> Optional[WatchedObject]:
        """Identify the fired watchpoint by fd, one comparison at a time.

        This mirrors §III-D1: CSOD "compares the current file descriptor
        with each of these saved file descriptors one-by-one".
        """
        for slot in self._slots:
            if slot is None:
                continue
            for saved_fd in slot.fds.values():
                self.fd_comparisons += 1
                if saved_fd == fd:
                    return slot
        return None

    def watched_objects(self) -> List[WatchedObject]:
        return [slot for slot in self._slots if slot is not None]

    def free_slots(self) -> int:
        return sum(1 for slot in self._slots if slot is None)

    # ------------------------------------------------------------------
    # Ageing (§III-C2)
    # ------------------------------------------------------------------
    def effective_slot_probability(self, watched: WatchedObject) -> float:
        """The victim-selection probability, decayed by installed age."""
        base = self._sampling.effective_probability(watched.record)
        age_ns = self._clock.now_ns - watched.install_time_ns
        period_ns = int(self._config.watchpoint_age_seconds * NANOS_PER_SECOND)
        if period_ns <= 0 or age_ns < period_ns:
            return base
        # Halve once per full aging period: long-watched, quiet objects
        # become progressively easier to evict.
        periods = age_ns // period_ns
        return base * (0.5 ** min(periods, 60))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _free_slot(self) -> Optional[int]:
        for index, slot in enumerate(self._slots):
            if slot is None:
                return index
        return None

    def _occupied_view(self) -> List[Tuple[int, float]]:
        return [
            (index, self.effective_slot_probability(slot))
            for index, slot in enumerate(self._slots)
            if slot is not None
        ]

    def _install(
        self,
        slot_index: int,
        object_address: int,
        object_size: int,
        watch_address: int,
        record: ContextRecord,
    ) -> WatchedObject:
        watched = WatchedObject(
            object_address=object_address,
            object_size=object_size,
            watch_address=watch_address,
            record=record,
            install_time_ns=self._clock.now_ns,
            # Captured before the post-watch halving: the probability the
            # object was actually sampled with.
            install_probability=self._sampling.effective_probability(record),
            slot_index=slot_index,
        )
        if self._config.batched_syscalls:
            attr = PerfEventAttr(
                bp_type=HW_BREAKPOINT_RW, bp_addr=watched.watch_address, bp_len=8
            )
            watched.fds = self._perf.batch_install(attr, self.alive_tids(), SIGTRAP)
        elif self._fast:
            attr = PerfEventAttr(
                bp_type=HW_BREAKPOINT_RW, bp_addr=watched.watch_address, bp_len=8
            )
            watched.fds = self._perf.install_fast(attr, self.alive_tids(), SIGTRAP)
        else:
            for thread in self._threads.alive_threads():
                self._arm_on_thread(watched, thread)
        self._slots[slot_index] = watched
        self._by_address[object_address] = watched
        self._sampling.on_watched(record)
        self.install_count += 1
        self._ledger.record(EVENT_WATCH_INSTALL)
        return watched

    def _arm_on_thread(self, watched: WatchedObject, thread: SimThread) -> None:
        """The per-thread installation sequence of Fig. 3."""
        attr = PerfEventAttr(
            bp_type=HW_BREAKPOINT_RW, bp_addr=watched.watch_address, bp_len=8
        )
        fd = self._perf.perf_event_open(attr, thread.tid)
        flags = self._perf.fcntl(fd, F_GETFL)
        self._perf.fcntl(fd, F_SETFL, flags)  # O_ASYNC
        self._perf.fcntl(fd, F_SETSIG, SIGTRAP)
        self._perf.fcntl(fd, F_SETOWN, thread.tid)
        self._perf.ioctl(fd, PERF_EVENT_IOC_ENABLE)
        watched.fds[thread.tid] = fd

    def _remove(self, watched: WatchedObject) -> None:
        """The removal sequence of Fig. 4, for all alive threads."""
        threads = self._threads
        if self._config.batched_syscalls:
            self._perf.batch_remove(
                fd
                for tid, fd in watched.fds.items()
                if threads.get(tid).alive
            )
            watched.fds.clear()
        elif self._fast:
            self._perf.remove_fast(
                [
                    fd
                    for tid, fd in watched.fds.items()
                    if threads.get(tid).alive
                ]
            )
            watched.fds.clear()
        for tid, fd in list(watched.fds.items()):
            if threads.get(tid).alive:
                self._perf.ioctl(fd, PERF_EVENT_IOC_DISABLE)
                self._perf.close(fd)
            watched.fds.pop(tid, None)
        self._slots[watched.slot_index] = None
        self._by_address.pop(watched.object_address, None)
        watched.slot_index = -1
        self._ledger.record(EVENT_WATCH_REMOVE)

    def alive_tids(self) -> List[int]:
        """The tids every installation targets, cached across the quantum.

        Recomputed only when thread creation/exit invalidates it —
        allocation-dense stretches between scheduling events reuse one
        list instead of re-walking the registry per install.
        """
        tids = self._alive_tids
        if tids is None:
            self._alive_list = self._threads.alive_threads()
            tids = self._alive_tids = [t.tid for t in self._alive_list]
        return tids

    def alive_threads_cached(self) -> List[SimThread]:
        """The alive :class:`SimThread` objects behind :meth:`alive_tids`."""
        if self._alive_tids is None:
            self.alive_tids()
        return self._alive_list

    def _on_thread_created(self, thread: SimThread) -> None:
        self._alive_tids = None
        # pthread_create interposition: arm every active watchpoint on
        # the newcomer so it cannot overflow unobserved.
        for slot in self._slots:
            if slot is None:
                continue
            if self._config.batched_syscalls:
                attr = PerfEventAttr(
                    bp_type=HW_BREAKPOINT_RW, bp_addr=slot.watch_address, bp_len=8
                )
                slot.fds.update(
                    self._perf.batch_install(attr, [thread.tid], SIGTRAP)
                )
            elif self._fast:
                attr = PerfEventAttr(
                    bp_type=HW_BREAKPOINT_RW, bp_addr=slot.watch_address, bp_len=8
                )
                slot.fds.update(
                    self._perf.install_fast(attr, [thread.tid], SIGTRAP)
                )
            else:
                self._arm_on_thread(slot, thread)

    def _on_thread_exited(self, thread: SimThread) -> None:
        self._alive_tids = None
        # The kernel tears events down with the thread; drop our fds.
        for slot in self._slots:
            if slot is not None:
                fd = slot.fds.pop(thread.tid, None)
                if fd is not None:
                    try:
                        self._perf.close(fd)
                    except Exception:
                        pass

    def remove_all(self) -> None:
        """Tear down every watchpoint (used at runtime shutdown)."""
        for slot in list(self._slots):
            if slot is not None:
                self._remove(slot)

    def check_invariants(self) -> None:
        """Assert the WMU's view matches the hardware state.

        For every alive thread: the armed debug registers are exactly
        the fds of the occupied logical slots, each watching the slot's
        boundary address.  Used by the stress tests.
        """
        occupied = [slot for slot in self._slots if slot is not None]
        for watched in occupied:
            assert watched.slot_index >= 0
        for thread in self._threads.alive_threads():
            armed = {wp.cookie: wp for wp in thread.debug_registers.armed()}
            expected = {
                watched.fds[thread.tid]: watched
                for watched in occupied
                if thread.tid in watched.fds
            }
            assert set(armed) == set(expected), (
                f"tid {thread.tid}: armed fds {sorted(armed)} != "
                f"expected {sorted(expected)}"
            )
            for fd, watched in expected.items():
                assert armed[fd].address == watched.watch_address
