"""The batched per-allocation driver (``CSODConfig.hotpath="batched"``).

:class:`FastAllocDealloc` replaces the unit-by-unit dispatch of
:class:`~repro.core.monitor.AllocDeallocMonitoringUnit` with one flat
routine per operation.  The simulated machine behaves identically — the
same context records mutate through the same rules, the same RNG streams
are consumed in the same order, the same debug registers arm, and the
cost ledger receives the same counts and nanoseconds — but the Python
work per interposed call collapses:

* every per-rule method call is inlined into one flat body per driver;
* runs of ledger records with no observation point between them are
  charged as precompiled
  :class:`~repro.machine.syscall_cost.CostBundle`\\ s, tallied into the
  ledger's deferred-bundle map;
* the drivers are *compiled closures* — ``_compile`` builds
  ``malloc``/``free`` functions whose unit state, configuration
  constants, and container methods are all closure locals, erasing the
  per-call attribute traffic of a bound-method implementation;
* header/canary words are written and read straight into the address
  space's page ``bytearray``\\ s when the block sits in the hot region;
* the first-fit allocator's hot bodies are inlined when the baseline
  heap is the stock :class:`~repro.heap.allocator.FreeListAllocator`;
* watched-object / perf-event / watchpoint shells are pooled: a clean
  free returns the three fully detached objects to per-driver free
  lists and the next installation re-initializes every field, so the
  steady state allocates no Python objects at all.

Fusion safety.  The virtual clock is readable at four points inside an
allocation (the throttle window, the revive rule, the sampling draw, and
the installation timestamp) and at one point inside a corrupted-canary
deallocation (the report timestamp).  Every fused run below lies
strictly between two such observation points, so the clock value at each
observation — and therefore every time-dependent decision — is identical
to the legacy path's.  Deferred tallies are order-free entirely: only
the clock adds must land at the right points, which lets one tally cover
charge runs on both sides of an observation.
``tests/integration/test_hotpath_equivalence.py`` pins this end to end.

The fast driver covers the paper's full configuration (evidence and
watchpoints enabled).  Other configurations, and instrumentation that
monkeypatches the individual unit methods (the oracle's invariant
probes), use the legacy driver.
"""

from __future__ import annotations

from struct import error as _struct_error

from repro.callstack.backtrace import PEEK_COST_NS
from repro.callstack.contexts import ContextKey
from repro.core.canary import CANARY_CHECK_COST_NS, CANARY_SET_COST_NS
from repro.core.monitor import AllocDeallocMonitoringUnit
from repro.core.policies import ReplacementPolicy
from repro.core.reporting import (
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_FREE_CANARY,
)
from repro.core.rng import DRAW_BLOCK_SIZE, RNG_DRAW_COST_NS, _UNIFORM_SCALE
from repro.core.context_key import LOOKUP_COST_NS
from repro.core.watchpoints import WatchedObject
from repro.errors import (
    DebugRegisterError,
    DoubleFreeError,
    InvalidFreeError,
    OutOfMemoryError,
)
from repro.heap.allocator import FreeListAllocator
from repro.machine.address_space import _PACK_WORD, _WORD_STRUCTS
from repro.machine.debug_registers import (
    FastWatchpoint,
    NUM_USABLE_DEBUG_REGISTERS,
)
from repro.heap.interpose import FREE_COST_NS, MALLOC_COST_NS
from repro.heap.layout import (
    CANARY_SIZE,
    CSOD_HEADER_SIZE,
    HEADER_IDENTIFIER,
)
from repro.machine.perf_events import (
    _INSTALL_BUNDLE,
    _REMOVE_BUNDLE,
    HW_BREAKPOINT_RW,
    PerfEvent,
    PerfEventAttr,
)
from repro.machine.signals import SIGTRAP
from repro.machine.syscall_cost import (
    CostBundle,
    EVENT_CANARY_CHECK,
    EVENT_CANARY_SET,
    EVENT_CONTEXT_LOOKUP,
    EVENT_FREE,
    EVENT_MALLOC,
    EVENT_RNG_DRAW,
    EVENT_WATCH_INSTALL,
    EVENT_WATCH_REMOVE,
)
from repro.machine.threads import SimThread

# Fused charge runs.  Each bundle spans ledger records that the legacy
# path emits back to back with no clock observation in between.
_PEEK_LOOKUP = CostBundle(
    (
        ("callstack.peek", 1, PEEK_COST_NS),
        (EVENT_CONTEXT_LOOKUP, 1, LOOKUP_COST_NS),
    )
)
_MALLOC_CANARY = CostBundle(
    (
        (EVENT_MALLOC, 1, MALLOC_COST_NS),
        (EVENT_CANARY_SET, 1, CANARY_SET_COST_NS),
    )
)
_CHECK_FREE = CostBundle(
    (
        (EVENT_CANARY_CHECK, 1, CANARY_CHECK_COST_NS),
        (EVENT_FREE, 1, FREE_COST_NS),
    )
)
_RNG_DRAW_ONLY = CostBundle(((EVENT_RNG_DRAW, 1, RNG_DRAW_COST_NS),))
# Every malloc charges peek+lookup and then malloc+canary-set; the
# *tally* is order-free (only the clock adds must land at the right
# observation points), so both runs fold into one deferred entry.
_MALLOC_COMMON = _PEEK_LOOKUP.merged(_MALLOC_CANARY)
# Precomputed clock charges for the inline bundle tallies below.
_PEEK_LOOKUP_NS = _PEEK_LOOKUP.total_nanos
_MALLOC_CANARY_NS = _MALLOC_CANARY.total_nanos
_CHECK_FREE_NS = _CHECK_FREE.total_nanos
_RNG_DRAW_NS = _RNG_DRAW_ONLY.total_nanos
# Zero-cost marker events, merged into the scaled syscall bundles so an
# install (or a clean watched free) is one ledger application total.
_WATCH_INSTALL_ONLY = CostBundle(((EVENT_WATCH_INSTALL, 1, 0),))
_WATCH_REMOVE_ONLY = CostBundle(((EVENT_WATCH_REMOVE, 1, 0),))
# Clean watched free: remove syscalls (scaled per thread) + watch-remove
# marker + canary check + libc free, all between two observation points.
_REMOVE_CHECK_FREE_TAIL = _WATCH_REMOVE_ONLY.merged(_CHECK_FREE)

# Per-alive-thread-count caches for the fused install / watched-free
# charges.  n == 0 (no alive threads holds fds) charges the markers only,
# matching the legacy early-return in ``remove_fast``.
_INSTALL_FULL: dict = {}
_FREE_WATCHED_CLEAN: dict = {0: _REMOVE_CHECK_FREE_TAIL}
_REMOVE_WATCHED: dict = {0: _WATCH_REMOVE_ONLY}

# Whole-malloc deferred tallies: every successful malloc tallies exactly
# ONE pending entry — (peek+lookup+malloc+canary-set), optionally merged
# with the sampling draw and the per-thread install syscalls.  Tallies
# are order-free, so a single entry per call is equivalent to the legacy
# record sequence as long as each clock add lands at its observation
# point (which the drivers do separately).
_M_DRAW = _MALLOC_COMMON.merged(_RNG_DRAW_ONLY)
_M_INSTALL: dict = {}
_M_DRAW_INSTALL: dict = {}
# Legacy charges peek+lookup+malloc and *not* the canary set before the
# allocator raises OOM; this bundle makes the fast path's unwind
# charge-exact.
_OOM_MALLOC = _PEEK_LOOKUP.merged(
    CostBundle(((EVENT_MALLOC, 1, MALLOC_COST_NS),))
)


def _install_bundle_for(n: int) -> CostBundle:
    bundle = _INSTALL_FULL.get(n)
    if bundle is None:
        bundle = _INSTALL_FULL[n] = _INSTALL_BUNDLE.scaled(n).merged(
            _WATCH_INSTALL_ONLY
        )
    return bundle


def _free_clean_bundle_for(n: int) -> CostBundle:
    bundle = _FREE_WATCHED_CLEAN.get(n)
    if bundle is None:
        bundle = _FREE_WATCHED_CLEAN[n] = _REMOVE_BUNDLE.scaled(n).merged(
            _REMOVE_CHECK_FREE_TAIL
        )
    return bundle


def _remove_bundle_for(n: int) -> CostBundle:
    bundle = _REMOVE_WATCHED.get(n)
    if bundle is None:
        bundle = _REMOVE_WATCHED[n] = _REMOVE_BUNDLE.scaled(n).merged(
            _WATCH_REMOVE_ONLY
        )
    return bundle


def _malloc_install_entry_for(n: int, drawn: bool):
    """(whole-call bundle, install-only nanos) for an installing malloc.

    The bundle tallies peek+lookup+malloc+canary-set (+draw) and the
    n-thread install syscalls as one pending entry; the second element
    is the clock charge still owed at the install point (the earlier
    phases already advanced the clock at their own points).
    """
    cache = _M_DRAW_INSTALL if drawn else _M_INSTALL
    entry = cache.get(n)
    if entry is None:
        base = _M_DRAW if drawn else _MALLOC_COMMON
        inst = _install_bundle_for(n)
        entry = cache[n] = (base.merged(inst), inst.total_nanos)
    return entry


class FastAllocDealloc(AllocDeallocMonitoringUnit):
    """Flat malloc/free drivers over the shared unit state.

    ``__init__`` compiles the two drivers into closures and binds them
    as the instance's ``malloc``/``free`` attributes (shadowing the
    inherited methods).  ``memalign`` and ``usable_size`` (cold paths)
    inherit the legacy implementations; they mutate the same state the
    fast paths read, so interleavings stay coherent.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not (self._config.evidence_enabled and self._config.watchpoints_enabled):
            raise ValueError(
                "the batched hot path covers the full configuration only"
            )
        if NUM_USABLE_DEBUG_REGISTERS != 4:
            raise ValueError(
                "the unrolled free-slot scan assumes 4 debug registers"
            )
        if DRAW_BLOCK_SIZE != 256:
            raise ValueError(
                "the inline draw assumes 256-entry RNG blocks"
            )
        sampling = self._sampling
        # Unit internals, hoisted once.  The fast drivers and the legacy
        # units share this state, so cold paths (memalign, the signal
        # handler, exit sweeps) interleave correctly with hot ones.
        self._ledger = self._canary._ledger
        self._memory = self._canary._machine.memory
        self._allocator = self._raw.allocator
        self._interner = sampling._interner
        self._table = sampling._table
        self._thread_cache = sampling._thread_cache
        self._batched_syscalls = self._config.batched_syscalls
        self._clock_obj = self._clock
        self._streams = {}
        # tid -> bound ``uniform`` of that thread's stream: one dict get
        # per draw instead of two lookups and a method hop.
        self._uniforms = {}
        wmu = self._wmu
        self._perf = wmu._perf
        # The base-class ``on_freed`` is a no-op in every shipped policy;
        # skip the call entirely unless a policy actually overrides it.
        policy = wmu._policy
        self._policy_on_freed = (
            None
            if type(policy).on_freed is ReplacementPolicy.on_freed
            else policy.on_freed
        )
        self.malloc, self.free = self._compile()

    def _stream(self, tid: int):
        stream = self._streams.get(tid)
        if stream is None:
            stream = self._streams[tid] = self._rng.stream(tid)
            if not stream._block:
                # Prime the draw buffer so the inline draw can test the
                # read position against the literal block size.  The
                # refill only precomputes the same deterministic
                # sequence; draw order is unchanged.
                stream._refill()
        return stream

    def _uniform_fn(self, tid: int):
        fn = self._uniforms.get(tid)
        if fn is None:
            fn = self._uniforms[tid] = self._stream(tid).uniform
        return fn

    # ------------------------------------------------------------------
    # Driver compilation
    # ------------------------------------------------------------------
    def _compile(self):
        """Build the malloc/free closures over hoisted unit state.

        Every name the hot loops touch resolves as a closure variable:
        configuration constants, the shared mutable containers (which
        their owners only ever mutate in place, never rebind), and the
        bound methods of the cold fallbacks.  The containers are the
        *same objects* the legacy units use, so cold paths interleave
        coherently with the compiled drivers.
        """
        unit = self
        sampling = self._sampling
        interner = self._interner
        table = self._table
        intern_keyed = interner.intern_keyed
        get_uncharged = table.get_uncharged
        table_put = table.put
        new_record = sampling._new_record
        thread_cache = self._thread_cache
        tc_get = thread_cache.get

        ledger = self._ledger
        ledger_record = ledger.record
        charge_bundle = ledger.charge_bundle
        pending = ledger._pending
        pget = pending.get
        lclk = ledger._clock
        clock = self._clock_obj

        config = self._config
        floor = sampling._floor
        degradation = sampling._degradation_per_alloc
        throttle_threshold = sampling._throttle_threshold
        throttle_probability = sampling._throttle_probability
        window_ns = sampling._window_ns
        revive_period_ns = sampling._revive_period_ns
        revive_chance = config.revive_chance
        revive_probability = config.revive_probability
        watch_factor = config.watch_degradation_factor
        batched = self._batched_syscalls

        canary = self._canary
        canary_value = canary.canary_value
        addr_slot = canary._addr_slot
        addr_slot_get = addr_slot.get
        slot_addr = canary._slot_addr
        slot_size = canary._slot_size
        slot_real = canary._slot_real
        slot_record = canary._slot_record
        free_slots = canary._free_slots

        mem = self._memory
        pages = mem._pages
        pages_get = pages.get
        w_words = mem.write_words
        w_word = mem.write_word
        r_words = mem.read_words
        r_word = mem.read_word
        pack4 = _WORD_STRUCTS[4].pack_into
        pack1 = _PACK_WORD.pack_into
        unpack1 = _PACK_WORD.unpack_from

        allocator = self._allocator
        alloc_malloc = allocator.malloc
        alloc_free = allocator.free
        raw_free = self._raw.free
        # The stock first-fit allocator's hot bodies inline into the
        # drivers (bit-identical list/stats surgery); any other
        # allocator (e.g. segregated) goes through its own methods.
        inline_alloc = type(allocator) is FreeListAllocator
        if inline_alloc:
            a_free_list = allocator._free
            a_live = allocator._live
            a_live_pop = a_live.pop
            a_freed_once = allocator._freed_once
            a_freed_add = a_freed_once.add
            a_freed_discard = a_freed_once.discard
            a_stats = allocator.stats
        else:
            a_free_list = a_live = a_live_pop = None
            a_freed_once = a_freed_add = a_freed_discard = a_stats = None

        wmu = self._wmu
        wslots = wmu._slots
        by_address = wmu._by_address
        by_address_pop = by_address.pop
        alive_cached = wmu.alive_threads_cached
        alive_tids = wmu.alive_tids
        try_watch = wmu.try_watch
        wmu_remove = wmu._remove
        perf = self._perf
        events = perf._events
        events_pop = events.pop
        next_fd = perf._fds.__next__
        batch_install = perf.batch_install
        # Thread objects are never removed from the registry (exit only
        # marks them dead), so fds' tids always resolve directly.
        registry = wmu._threads._threads
        on_freed_hook = self._policy_on_freed
        boost = sampling.boost_to_certain
        sink = self._sink

        streams_get = self._streams.get
        stream_for = self._stream
        uniforms_get = self._uniforms.get
        uniform_fn = self._uniform_fn

        hdr_size = CSOD_HEADER_SIZE
        wrap_extra = CSOD_HEADER_SIZE + CANARY_SIZE
        identifier = HEADER_IDENTIFIER
        # One-entry attr cache: allocation-dense workloads re-wrap the
        # same (address, size) over and over, and PerfEventAttr is
        # frozen, so sharing one instance across installs is safe.
        attr_addr = -1
        attr_obj = None
        # Recycled shells for the three per-installation objects.  A
        # clean (non-batched) free fully detaches all three — fds
        # cleared, events popped and closed, registers disarmed — so
        # the next installation can overwrite every field in place.
        # Pool sizes are naturally capped: a push only follows a pop (or
        # a construction that happened because the pool was empty), so a
        # pool never exceeds the peak number of concurrently installed
        # objects/events — at most four slots across all threads.
        wo_pool: list = []
        ev_pool: list = []
        wp_pool: list = []

        def malloc(thread: SimThread, size: int) -> int:
            nonlocal attr_addr, attr_obj
            unit.allocation_count += 1
            tid = thread.tid
            stack = thread.call_stack

            # --- sampling.on_allocation, flattened ---------------------
            # One return-address peek + one hash-table lookup; the costs
            # fuse because the first clock observation (the throttle
            # rule) comes after both.  The tally itself is deferred into
            # the ``_MALLOC_COMMON`` entry below — only the clock must
            # advance here, before the throttle rule reads it.
            frames = stack._frames
            first_ra = frames[-1].site.return_address if frames else 0
            offset = stack._offset
            # ``cnow`` carries the virtual-clock value through the call:
            # nothing else can advance the clock between this driver's
            # own charge points, so each observation reads the local and
            # each charge is one add + one store.  Without a charging
            # clock the value is simply constant for the whole call.
            if lclk is not None:
                cnow = lclk._now_ns + _PEEK_LOOKUP_NS
                lclk._now_ns = cnow
            else:
                cnow = clock._now_ns
            cached = tc_get(tid)
            if cached is not None and cached[0] == first_ra and cached[1] == offset:
                record = cached[2]
                # interner.note_hit + table.charge_hit bookkeeping, inline.
                interner.hits += 1
                if cached[3] != len(frames):
                    interner.collisions_possible += 1
                table.lock_acquisitions += 1
                table.chain_walk_steps += 1
            else:
                key = ContextKey(first_level_ra=first_ra, stack_offset=offset)
                context = intern_keyed(key, stack)
                record = get_uncharged(key)
                if record is None:
                    record = new_record(key, context)
                    table_put(key, record)
                thread_cache[tid] = (
                    first_ra,
                    offset,
                    record,
                    len(record.context.return_addresses),
                )
                # Interning a new context charges the clock internally
                # (backtrace walk, context creation), so the carried
                # value is stale on this cold path — re-read it before
                # the throttle rule observes it.
                if lclk is not None:
                    cnow = lclk._now_ns
            sampling.total_allocations_seen += 1
            record.allocation_count += 1
            pinned = record.overflow_observed
            if not pinned:
                # Degradation on each allocation.
                probability = record.probability - degradation
                record.probability = floor if probability < floor else probability
                # Throttle window ([start, start + window), half-open).
                now = cnow
                if now - record.window_start_ns >= window_ns:
                    record.window_start_ns = now
                    record.window_alloc_count = 1
                else:
                    record.window_alloc_count += 1
                if (
                    record.window_alloc_count > throttle_threshold
                    and record.throttled_until_ns <= now
                ):
                    record.throttled_until_ns = record.window_start_ns + window_ns
                    record.probability = floor
                # Reviving.
                if record.probability > floor:
                    record.floor_since_ns = -1
                else:
                    floor_since = record.floor_since_ns
                    if floor_since < 0:
                        record.floor_since_ns = now
                    elif now - floor_since >= revive_period_ns:
                        record.floor_since_ns = now
                        pending[_RNG_DRAW_ONLY] = pget(_RNG_DRAW_ONLY, 0) + 1
                        if lclk is not None:
                            cnow += _RNG_DRAW_NS
                            lclk._now_ns = cnow
                        ufn = uniforms_get(tid)
                        if ufn is None:
                            ufn = uniform_fn(tid)
                        if ufn() < revive_chance:
                            record.probability = revive_probability

            # --- canary wrap (raw malloc + header + canary) -------------
            # The libc-malloc and canary-set costs fuse with the peek
            # and lookup above into the single whole-call tally applied
            # at the end of the call; only the clock add (below, after a
            # successful allocation) must precede the next observation —
            # the sampling draw's throttle check.
            wrap = wrap_extra + size
            if inline_alloc and wrap > 0:
                # FreeListAllocator.malloc, inlined (first-fit with
                # split; identical list and stats surgery).
                block_size = (wrap + 15) & -16
                real = -1
                i = 0
                n_extents = len(a_free_list)
                while i < n_extents:
                    se = a_free_list[i]
                    extent = se[1]
                    if extent >= block_size:
                        start = se[0]
                        remainder = extent - block_size
                        if remainder:
                            a_free_list[i] = (start + block_size, remainder)
                        else:
                            del a_free_list[i]
                        a_live[start] = block_size
                        a_freed_discard(start)
                        a_stats.total_allocations += 1
                        live_bytes = a_stats.live_bytes + block_size
                        a_stats.live_bytes = live_bytes
                        live_blocks = a_stats.live_blocks + 1
                        a_stats.live_blocks = live_blocks
                        if live_bytes > a_stats.peak_live_bytes:
                            a_stats.peak_live_bytes = live_bytes
                        if live_blocks > a_stats.peak_live_blocks:
                            a_stats.peak_live_blocks = live_blocks
                        real = start
                        break
                    i += 1
                if real < 0:
                    # Legacy charges peek+lookup+malloc (no canary set)
                    # before the allocator raises; stay charge-exact.
                    pending[_OOM_MALLOC] = pget(_OOM_MALLOC, 0) + 1
                    if lclk is not None:
                        lclk._now_ns = cnow + MALLOC_COST_NS
                    raise OutOfMemoryError(wrap)
            else:
                try:
                    real = alloc_malloc(wrap)
                except OutOfMemoryError:
                    pending[_OOM_MALLOC] = pget(_OOM_MALLOC, 0) + 1
                    if lclk is not None:
                        lclk._now_ns = cnow + MALLOC_COST_NS
                    raise
            if lclk is not None:
                cnow += _MALLOC_CANARY_NS
                lclk._now_ns = cnow
            object_address = real + hdr_size
            canary_address = object_address + size
            # The Fig. 5 header + canary stores, written straight into
            # the page bytearrays when the whole wrapped block sits in
            # the hot region (the address-space fast path, inlined).
            if mem._hot_start <= real and canary_address + 8 <= mem._hot_end:
                pi = -1
                page = None
                off = real & 4095
                if off <= 4064:
                    pi = real >> 12
                    page = pages_get(pi)
                    if page is None:
                        page = pages[pi] = bytearray(4096)
                    try:
                        pack4(page, off, real, size, first_ra, identifier)
                    except _struct_error:
                        # Out-of-range word (e.g. a synthetic negative
                        # return address): the byte path masks it.
                        w_words(real, (real, size, first_ra, identifier))
                else:
                    w_words(real, (real, size, first_ra, identifier))
                off = canary_address & 4095
                if off <= 4088:
                    ci = canary_address >> 12
                    if ci != pi:
                        page = pages_get(ci)
                        if page is None:
                            page = pages[ci] = bytearray(4096)
                    pack1(page, off, canary_value)
                else:
                    w_word(canary_address, canary_value)
            else:
                w_words(real, (real, size, first_ra, identifier))
                w_word(canary_address, canary_value)
            # Header-table slot acquisition (index-addressed, no
            # per-allocation record objects).
            if free_slots:
                slot = free_slots.pop()
                slot_addr[slot] = object_address
                slot_size[slot] = size
                slot_real[slot] = real
                slot_record[slot] = record
            else:
                slot = len(slot_addr)
                slot_addr.append(object_address)
                slot_size.append(size)
                slot_real.append(real)
                slot_record.append(record)
            addr_slot[object_address] = slot

            # --- sampling draw (should_watch) ---------------------------
            # The draw's ledger count folds into the whole-call tally
            # below (``drawn`` selects the bundle); only the clock add
            # happens here, before the install timestamp is read.
            drawn = False
            if pinned:
                draw_passed = True
            else:
                if record.throttled_until_ns > cnow:
                    probability = throttle_probability
                else:
                    probability = record.probability
                if probability >= 1.0:
                    draw_passed = True
                else:
                    drawn = True
                    if lclk is not None:
                        cnow += _RNG_DRAW_NS
                        lclk._now_ns = cnow
                    # One buffered draw, inline (rng.uniform's body; the
                    # driver's streams are primed, so the block length
                    # is always DRAW_BLOCK_SIZE).
                    s = streams_get(tid)
                    if s is None:
                        s = stream_for(tid)
                    pos = s._pos
                    if pos >= 256:
                        s._refill()
                        pos = 0
                    block = s._block
                    s._pos = pos + 1
                    draw_passed = (block[pos] >> 11) * _UNIFORM_SCALE < probability

            # --- watchpoint installation --------------------------------
            if wslots[0] is None:
                free_index = 0
            elif wslots[1] is None:
                free_index = 1
            elif wslots[2] is None:
                free_index = 2
            elif wslots[3] is None:
                free_index = 3
            else:
                free_index = -1
            if free_index >= 0:
                # "Installation due to availability": a free debug
                # register is used whether or not the draw passed.
                watch_address = canary_address
                now = cnow
                if pinned:
                    install_probability = 1.0
                elif record.throttled_until_ns > now:
                    install_probability = throttle_probability
                else:
                    install_probability = record.probability
                if wo_pool:
                    watched = wo_pool.pop()
                    watched.object_address = object_address
                    watched.object_size = size
                    watched.watch_address = watch_address
                    watched.record = record
                    watched.install_time_ns = now
                    watched.install_probability = install_probability
                    watched.slot_index = free_index
                else:
                    watched = WatchedObject(
                        object_address,
                        size,
                        watch_address,
                        record,
                        now,
                        install_probability,
                        free_index,
                    )
                if attr_addr != watch_address:
                    attr_obj = PerfEventAttr(
                        bp_type=HW_BREAKPOINT_RW, bp_addr=watch_address
                    )
                    attr_addr = watch_address
                attr = attr_obj
                if batched:
                    mb = _M_DRAW if drawn else _MALLOC_COMMON
                    pending[mb] = pget(mb, 0) + 1
                    watched.fds = batch_install(attr, alive_tids(), SIGTRAP)
                    ledger_record(EVENT_WATCH_INSTALL)
                else:
                    # The Fig. 3 sequence per alive thread, fully
                    # inlined: fd allocation, event bookkeeping, and
                    # debug-register arming — tallied together with the
                    # whole call as ONE pending entry (six syscalls per
                    # thread + the zero-cost install marker + the
                    # peek/lookup/malloc/canary[/draw] phases above).
                    if wmu._alive_tids is None:
                        alive_cached()
                    alive = wmu._alive_list
                    n_alive = len(alive)
                    cache = _M_DRAW_INSTALL if drawn else _M_INSTALL
                    entry = cache.get(n_alive)
                    if entry is None:
                        entry = _malloc_install_entry_for(n_alive, drawn)
                    bundle, inst_ns = entry
                    pending[bundle] = pget(bundle, 0) + 1
                    if lclk is not None:
                        lclk._now_ns = cnow + inst_ns
                    fds = watched.fds
                    for th in alive:
                        tid_t = th.tid
                        fd = next_fd()
                        if ev_pool:
                            event = ev_pool.pop()
                            event.fd = fd
                            event.closed = False
                            if event.tid != tid_t or event.attr is not attr:
                                event.attr = attr
                                event.tid = tid_t
                                event.signo = SIGTRAP
                                event.owner_tid = tid_t
                                event.async_notify = True
                        else:
                            event = PerfEvent(fd, attr, tid_t, SIGTRAP, tid_t, True)
                        events[fd] = event
                        regs = th.debug_registers._slots
                        if wp_pool:
                            watchpoint = wp_pool.pop()
                            watchpoint.address = watch_address
                            watchpoint.cookie = fd
                        else:
                            watchpoint = FastWatchpoint(watch_address, fd)
                        if regs[0] is None:
                            regs[0] = watchpoint
                        elif regs[1] is None:
                            regs[1] = watchpoint
                        elif regs[2] is None:
                            regs[2] = watchpoint
                        elif regs[3] is None:
                            regs[3] = watchpoint
                        else:
                            raise DebugRegisterError(
                                "all usable debug registers are armed"
                            )
                        event.enabled = True
                        fds[tid_t] = fd
                wslots[free_index] = watched
                by_address[object_address] = watched
                # sampling.on_watched, inline: halve after each watch.
                record.watch_count += 1
                if not pinned:
                    probability = record.probability * watch_factor
                    record.probability = (
                        floor if probability < floor else probability
                    )
                wmu.install_count += 1
            else:
                # No free register: tally the whole-call bundle, then
                # let the replacement policy decide (it charges its own
                # syscalls through the legacy units).
                mb = _M_DRAW if drawn else _MALLOC_COMMON
                pending[mb] = pget(mb, 0) + 1
                if draw_passed:
                    try_watch(
                        thread,
                        object_address,
                        size,
                        canary_address,
                        record,
                        probability_checked=True,
                    )
            return object_address

        def free(thread: SimThread, address: int) -> None:
            if address == 0:
                return  # free(NULL) is a no-op
            unit.free_count += 1
            watched = by_address_pop(address, None)
            removed_fds = -1  # >= 0 when a removal must be charged below
            if watched is not None:
                index = watched.slot_index
                if batched:
                    by_address[address] = watched  # _remove pops it
                    wmu_remove(watched)
                else:
                    # The Fig. 4 removal per holding thread, fully
                    # inlined; the charge folds into one fused bundle.
                    # The single-holder case (one alive thread — the
                    # common shape) skips the items() iteration.
                    removed_fds = 0
                    fds_d = watched.fds
                    if len(fds_d) == 1:
                        tid_t, fd = fds_d.popitem()
                        th = registry[tid_t]
                        if th.alive:
                            removed_fds = 1
                            event = events_pop(fd, None)
                            if event is not None and not event.closed:
                                if event.enabled:
                                    regs = th.debug_registers._slots
                                    wp = regs[0]
                                    if wp is not None and wp.cookie == fd:
                                        regs[0] = None
                                    else:
                                        wp = regs[1]
                                        if wp is not None and wp.cookie == fd:
                                            regs[1] = None
                                        else:
                                            wp = regs[2]
                                            if wp is not None and wp.cookie == fd:
                                                regs[2] = None
                                            else:
                                                wp = regs[3]
                                                if wp is not None and wp.cookie == fd:
                                                    regs[3] = None
                                                else:
                                                    raise DebugRegisterError(
                                                        f"perf event fd {fd} "
                                                        "enabled but not armed "
                                                        f"on tid {tid_t}"
                                                    )
                                    event.enabled = False
                                    if wp.__class__ is FastWatchpoint:
                                        wp_pool.append(wp)
                                event.closed = True
                                ev_pool.append(event)
                    else:
                        for tid_t, fd in fds_d.items():
                            th = registry[tid_t]
                            if not th.alive:
                                continue
                            removed_fds += 1
                            event = events_pop(fd, None)
                            if event is None or event.closed:
                                continue
                            if event.enabled:
                                regs = th.debug_registers._slots
                                wp = regs[0]
                                if wp is not None and wp.cookie == fd:
                                    regs[0] = None
                                else:
                                    wp = regs[1]
                                    if wp is not None and wp.cookie == fd:
                                        regs[1] = None
                                    else:
                                        wp = regs[2]
                                        if wp is not None and wp.cookie == fd:
                                            regs[2] = None
                                        else:
                                            wp = regs[3]
                                            if wp is not None and wp.cookie == fd:
                                                regs[3] = None
                                            else:
                                                raise DebugRegisterError(
                                                    f"perf event fd {fd} enabled "
                                                    f"but not armed on tid {tid_t}"
                                                )
                                event.enabled = False
                                if wp.__class__ is FastWatchpoint:
                                    wp_pool.append(wp)
                            event.closed = True
                            ev_pool.append(event)
                        fds_d.clear()
                    wslots[index] = None
                    watched.slot_index = -1
                    watched.record = None
                    wo_pool.append(watched)
                if on_freed_hook is not None:
                    on_freed_hook(index)
            slot = addr_slot_get(address)
            if slot is None:
                # Not a CSOD-wrapped object (allocated before
                # interposition): fall through to the underlying free.
                if removed_fds >= 0:
                    bundle = _REMOVE_WATCHED.get(removed_fds)
                    if bundle is None:
                        bundle = _remove_bundle_for(removed_fds)
                    pending[bundle] = pget(bundle, 0) + 1
                    if lclk is not None:
                        lclk._now_ns += bundle.total_nanos
                raw_free(thread, address)
                return
            size = slot_size[slot]
            real = slot_real[slot]
            canary_address = address + size
            # Canary verification, inline.  Only the header identifier
            # word and the canary word decide corruption; read them
            # straight out of the page bytearrays when in the hot
            # region.  A corrupted identifier means the *previous*
            # object overran into our header — itself evidence of an
            # overflow here.
            ident_address = address - 8  # header word 3 (the identifier)
            if (
                mem._hot_start <= address - hdr_size
                and canary_address + 8 <= mem._hot_end
                and (ident_address & 4095) <= 4088
                and (canary_address & 4095) <= 4088
            ):
                ii = ident_address >> 12
                page = pages_get(ii)
                ident = (
                    0 if page is None else unpack1(page, ident_address & 4095)[0]
                )
                if ident != identifier:
                    corrupted = True
                else:
                    ci = canary_address >> 12
                    if ci != ii:
                        page = pages_get(ci)
                    value = (
                        0
                        if page is None
                        else unpack1(page, canary_address & 4095)[0]
                    )
                    corrupted = value != canary_value
            else:
                words = r_words(address - hdr_size, 4)
                corrupted = words[3] != identifier or (
                    r_word(canary_address) != canary_value
                )
            if not corrupted:
                # Remove syscalls, watch-remove marker, canary check, and
                # libc-free all fuse: nothing observes the clock in
                # between on the clean path.
                if removed_fds >= 0:
                    bundle = _FREE_WATCHED_CLEAN.get(removed_fds)
                    if bundle is None:
                        bundle = _free_clean_bundle_for(removed_fds)
                    total = bundle.total_nanos
                else:
                    bundle = _CHECK_FREE
                    total = _CHECK_FREE_NS
                pending[bundle] = pget(bundle, 0) + 1
                if lclk is not None:
                    lclk._now_ns += total
                del addr_slot[address]
                slot_record[slot] = None
                free_slots.append(slot)
                if inline_alloc:
                    # FreeListAllocator.free, inlined (binary-search
                    # insert + two-neighbour coalesce; identical list
                    # and stats surgery).
                    block_size = a_live_pop(real, None)
                    if block_size is None:
                        if real in a_freed_once:
                            raise DoubleFreeError(real)
                        raise InvalidFreeError(real)
                    a_freed_add(real)
                    a_stats.total_frees += 1
                    a_stats.live_bytes -= block_size
                    a_stats.live_blocks -= 1
                    lo = 0
                    hi = len(a_free_list)
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if a_free_list[mid][0] < real:
                            lo = mid + 1
                        else:
                            hi = mid
                    end = real + block_size
                    if lo < len(a_free_list) and end == a_free_list[lo][0]:
                        successor = a_free_list[lo]
                        a_free_list[lo] = (real, block_size + successor[1])
                    else:
                        a_free_list.insert(lo, (real, block_size))
                    if lo:
                        predecessor = a_free_list[lo - 1]
                        if predecessor[0] + predecessor[1] == real:
                            merged = a_free_list[lo]
                            a_free_list[lo - 1] = (
                                predecessor[0],
                                predecessor[1] + merged[1],
                            )
                            del a_free_list[lo]
                else:
                    alloc_free(real)
                return
            # Corrupted: keep the legacy charge order around the report's
            # clock read (removal and check costs before the report, free
            # cost after).
            if removed_fds >= 0:
                charge_bundle(_remove_bundle_for(removed_fds))
            ledger_record(EVENT_CANARY_CHECK, nanos_each=CANARY_CHECK_COST_NS)
            canary.corruption_count += 1
            record = slot_record[slot]
            boost(record)
            sink(
                OverflowReport(
                    kind=KIND_OVER_WRITE,
                    source=SOURCE_FREE_CANARY,
                    fault_address=canary_address,
                    object_address=address,
                    object_size=size,
                    thread_id=thread.tid,
                    time_ns=clock.now_ns,
                    allocation_context=record.context,
                )
            )
            del addr_slot[address]
            slot_record[slot] = None
            free_slots.append(slot)
            ledger_record(EVENT_FREE, nanos_each=FREE_COST_NS)
            alloc_free(real)

        # The driver handles free(NULL) itself, so the interposer may
        # bind it directly without its NULL-guard wrapper.
        free._handles_null = True
        return malloc, free
