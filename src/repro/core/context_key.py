"""The global calling-context hash table (§III-B1).

The paper's table is keyed by (first-level return address, stack offset),
sized "to a large number to reduce hash conflicts", with a linked list
per bucket protected by its own lock.  Python dicts would hide all of
that, so this module models the structure explicitly: a fixed bucket
array with chaining, per-bucket lock acquisition counted in the ledger,
and bucket-conflict statistics — letting the ablation benchmarks show
what the paper's sizing decision buys.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.callstack.contexts import ContextKey
from repro.machine.syscall_cost import CostLedger, EVENT_CONTEXT_LOOKUP

# The paper sets the size "to a large number"; 65536 buckets keeps the
# expected chain length << 1 even for MySQL-scale context counts.
DEFAULT_BUCKET_COUNT = 65536

# Calibrated cost of one hash + bucket walk + (uncontended) lock pair.
LOOKUP_COST_NS = 120

V = TypeVar("V")


class ContextHashTable(Generic[V]):
    """Fixed-bucket chained hash table keyed by :class:`ContextKey`."""

    def __init__(
        self,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        ledger: Optional[CostLedger] = None,
    ):
        if bucket_count <= 0:
            raise ValueError(f"bucket count must be positive, got {bucket_count}")
        self._buckets: List[List[Tuple[ContextKey, V]]] = [
            [] for _ in range(bucket_count)
        ]
        self._bucket_count = bucket_count
        self._ledger = ledger or CostLedger()
        self._size = 0
        self.lock_acquisitions = 0
        self.chain_walk_steps = 0

    def _bucket_index(self, key: ContextKey) -> int:
        # Mix both key components; the stack offset alone clusters badly.
        h = (key.first_level_ra * 0x9E3779B1) ^ (key.stack_offset * 0x85EBCA77)
        return (h >> 4) % self._bucket_count

    def _find(self, bucket: List[Tuple[ContextKey, V]], key: ContextKey) -> int:
        for i, (existing, _) in enumerate(bucket):
            self.chain_walk_steps += 1
            if existing == key:
                return i
        return -1

    def get(self, key: ContextKey) -> Optional[V]:
        """Look up a key; charges one hot-path lookup to the ledger."""
        self._ledger.record(EVENT_CONTEXT_LOOKUP, nanos_each=LOOKUP_COST_NS)
        self.lock_acquisitions += 1  # the per-bucket list lock
        bucket = self._buckets[self._bucket_index(key)]
        index = self._find(bucket, key)
        return bucket[index][1] if index >= 0 else None

    def get_uncharged(self, key: ContextKey) -> Optional[V]:
        """Look up a key whose simulated cost the caller already charged.

        The batched hot path folds the lookup cost into a fused bundle;
        the structural bookkeeping (lock acquisition, chain walk) is
        still performed here so the table's statistics are identical to
        an equivalent :meth:`get`.
        """
        self.lock_acquisitions += 1
        bucket = self._buckets[self._bucket_index(key)]
        index = self._find(bucket, key)
        return bucket[index][1] if index >= 0 else None

    def charge_hit(self) -> None:
        """Charge a lookup that a cache above the table answered.

        The real CSOD still pays the hash + lock + one chain step on
        every allocation; a caller that short-circuits the Python-level
        walk must keep the simulated cost model (and the clock it
        drives) identical, so the same ledger event and bookkeeping are
        recorded here.
        """
        self._ledger.record(EVENT_CONTEXT_LOOKUP, nanos_each=LOOKUP_COST_NS)
        self.lock_acquisitions += 1
        self.chain_walk_steps += 1

    def put(self, key: ContextKey, value: V) -> None:
        """Insert or replace under the bucket lock."""
        self.lock_acquisitions += 1
        bucket = self._buckets[self._bucket_index(key)]
        index = self._find(bucket, key)
        if index >= 0:
            bucket[index] = (key, value)
        else:
            bucket.append((key, value))
            self._size += 1

    def items(self) -> Iterator[Tuple[ContextKey, V]]:
        for bucket in self._buckets:
            for key, value in bucket:
                yield key, value

    def values(self) -> Iterator[V]:
        for _, value in self.items():
            yield value

    def conflicted_buckets(self) -> int:
        """Buckets holding more than one context (hash conflicts)."""
        return sum(1 for bucket in self._buckets if len(bucket) > 1)

    def max_chain_length(self) -> int:
        return max((len(bucket) for bucket in self._buckets), default=0)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: ContextKey) -> bool:
        bucket = self._buckets[self._bucket_index(key)]
        return self._find(bucket, key) >= 0
