"""The Signal Handling Unit (§III-D).

Registers the ``SIGTRAP`` handler (sigaction with ``sa_sigaction``
semantics, so the fd arrives in ``siginfo_t``), identifies which
watchpoint fired by comparing the delivered fd against each saved fd
one-by-one, and emits a dual-context :class:`OverflowReport`: the
faulting statement's full backtrace (taken *in the faulting thread*,
which is why Fig. 3 routes the signal with ``F_SETOWN``) plus the
allocation context stored with the watchpoint.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from repro.callstack.backtrace import Backtracer
from repro.core.reporting import (
    KIND_OVER_READ,
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_WATCHPOINT,
)
from repro.core.sampling import SamplingManagementUnit
from repro.core.watchpoints import WatchedObject, WatchpointManagementUnit
from repro.machine.cpu import AccessKind
from repro.machine.signals import SIGTRAP, SigInfo, SignalTable
from repro.machine.threads import SimThread

ReportSink = Callable[[OverflowReport], None]


class SignalHandlingUnit:
    """Turns watchpoint SIGTRAPs into overflow reports."""

    def __init__(
        self,
        signals: SignalTable,
        wmu: WatchpointManagementUnit,
        sampling: SamplingManagementUnit,
        backtracer: Backtracer,
        clock,
        sink: ReportSink,
    ):
        self._signals = signals
        self._wmu = wmu
        self._sampling = sampling
        self._backtracer = backtracer
        self._clock = clock
        self._sink = sink
        # One report per (allocation context, faulting site): a loop that
        # walks past the boundary fires the watchpoint on every
        # iteration, but users need one root cause, not a flood.
        self._reported: Set[Tuple[int, int]] = set()
        self.traps_handled = 0
        self.traps_ignored = 0
        # The handler must be registered BEFORE any watchpoint is
        # installed (§III-C1: "Before installing watchpoints, the signal
        # handler should be set up correctly").
        signals.sigaction(SIGTRAP, self._handle)

    # ------------------------------------------------------------------
    # The SIGTRAP handler
    # ------------------------------------------------------------------
    def _handle(self, signo: int, info: SigInfo, thread: SimThread) -> None:
        watched = self._wmu.find_by_fd(info.si_fd)
        if watched is None:
            # A trap from a watchpoint torn down concurrently; nothing to
            # attribute it to.
            self.traps_ignored += 1
            return
        self.traps_handled += 1
        self._report(watched, info, thread)

    def _report(
        self, watched: WatchedObject, info: SigInfo, thread: SimThread
    ) -> None:
        frames = self._backtracer.full_frames(thread.call_stack)
        fault_site_ra = frames[0].return_address if frames else 0
        dedup_key = (id(watched.record), fault_site_ra)
        # Observed overflows pin the context at 100% and mark it for
        # persistence — "all allocation calling contexts observed to
        # have overflows are written to persistent storage" (§IV-B).
        self._sampling.boost_to_certain(watched.record)
        if dedup_key in self._reported:
            return
        self._reported.add(dedup_key)
        kind = (
            KIND_OVER_READ if info.access_kind == AccessKind.READ else KIND_OVER_WRITE
        )
        report = OverflowReport(
            kind=kind,
            source=SOURCE_WATCHPOINT,
            fault_address=info.fault_address,
            object_address=watched.object_address,
            object_size=watched.object_size,
            thread_id=thread.tid,
            time_ns=self._clock.now_ns,
            allocation_context=watched.record.context,
            access_return_addresses=tuple(f.return_address for f in frames),
            access_frames=frames,
        )
        self._sink(report)
