"""Per-thread random number generation.

The paper ports OpenBSD's allocator RNG and makes it *per-thread*,
because glibc's ``rand()`` and OpenBSD's global generator serialize
multithreaded allocation on a lock (§III-A1).  We reproduce the design: a
:class:`PerThreadRNG` front-end hands each thread its own
:class:`XorShiftStream`, seeded deterministically from (process seed,
tid), so no cross-thread state is shared on the allocation hot path and
every execution is reproducible from its seed.

The stream is xorshift64* — not OpenBSD's chacha20-based arc4random, but
the property the paper needs (cheap, uniform, lock-free per thread) is
preserved, and cryptographic quality is irrelevant to sampling.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.syscall_cost import CostLedger, EVENT_RNG_DRAW

RNG_DRAW_COST_NS = 15

_MASK64 = (1 << 64) - 1
_MULTIPLIER = 0x2545F4914F6CDD1D


# Draws are generated in blocks of this size: the xorshift recurrence
# runs as one tight local loop per refill instead of paying Python call
# and attribute overhead on every draw.
DRAW_BLOCK_SIZE = 256

_UNIFORM_SCALE = 1.0 / float(1 << 53)


class XorShiftStream:
    """One thread's xorshift64* stream, replenished in blocks.

    The draw-order contract: ``next_u64``/``uniform``/``below`` consume
    the *same* underlying u64 sequence, in call order, exactly as a
    draw-at-a-time implementation would — block replenishment is purely
    an amortization of the generation cost.  The conformance tests in
    ``tests/core/test_rng.py`` pin this against a serial reference.
    """

    __slots__ = ("_state", "_block", "_pos")

    def __init__(self, seed: int):
        # A zero state would be a fixed point; splitmix the seed once.
        state = (seed + 0x9E3779B97F4A7C15) & _MASK64
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
        self._state = (state ^ (state >> 31)) or 1
        self._block: list = []
        self._pos = 0

    def _refill(self) -> None:
        x = self._state
        block = []
        append = block.append
        mask = _MASK64
        mult = _MULTIPLIER
        for _ in range(DRAW_BLOCK_SIZE):
            x ^= (x >> 12) & mask
            x = (x ^ (x << 25)) & mask
            x ^= x >> 27
            append((x * mult) & mask)
        self._state = x
        self._block = block
        self._pos = 0

    def next_u64(self) -> int:
        pos = self._pos
        block = self._block
        if pos >= len(block):
            self._refill()
            pos = 0
            block = self._block
        self._pos = pos + 1
        return block[pos]

    def uniform(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        pos = self._pos
        block = self._block
        if pos >= len(block):
            self._refill()
            pos = 0
            block = self._block
        self._pos = pos + 1
        return (block[pos] >> 11) * _UNIFORM_SCALE

    def below(self, bound: int) -> int:
        """An integer in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound


class PerThreadRNG:
    """Lock-free per-thread generators keyed by tid."""

    def __init__(self, process_seed: int, ledger: Optional[CostLedger] = None):
        self._process_seed = process_seed
        self._ledger = ledger or CostLedger()
        self._streams: Dict[int, XorShiftStream] = {}

    def _stream(self, tid: int) -> XorShiftStream:
        stream = self._streams.get(tid)
        if stream is None:
            # Mix the tid into the process seed; distinct tids get
            # decorrelated streams.
            stream = XorShiftStream(self._process_seed * 0x100000001B3 + tid)
            self._streams[tid] = stream
        return stream

    def uniform(self, tid: int) -> float:
        """One sampling draw by thread ``tid`` (charged to the ledger)."""
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).uniform()

    def next_u64(self, tid: int) -> int:
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).next_u64()

    def below(self, tid: int, bound: int) -> int:
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).below(bound)

    def stream(self, tid: int) -> XorShiftStream:
        """Thread ``tid``'s stream (created on first use).

        The batched hot path holds the stream directly and charges the
        per-draw ledger cost itself, fused into its per-phase bundles;
        draw order is unaffected because every consumer goes through the
        same stream object.
        """
        return self._stream(tid)

    def streams_created(self) -> int:
        return len(self._streams)
