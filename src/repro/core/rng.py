"""Per-thread random number generation.

The paper ports OpenBSD's allocator RNG and makes it *per-thread*,
because glibc's ``rand()`` and OpenBSD's global generator serialize
multithreaded allocation on a lock (§III-A1).  We reproduce the design: a
:class:`PerThreadRNG` front-end hands each thread its own
:class:`XorShiftStream`, seeded deterministically from (process seed,
tid), so no cross-thread state is shared on the allocation hot path and
every execution is reproducible from its seed.

The stream is xorshift64* — not OpenBSD's chacha20-based arc4random, but
the property the paper needs (cheap, uniform, lock-free per thread) is
preserved, and cryptographic quality is irrelevant to sampling.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.syscall_cost import CostLedger, EVENT_RNG_DRAW

RNG_DRAW_COST_NS = 15

_MASK64 = (1 << 64) - 1
_MULTIPLIER = 0x2545F4914F6CDD1D


class XorShiftStream:
    """One thread's xorshift64* stream."""

    def __init__(self, seed: int):
        # A zero state would be a fixed point; splitmix the seed once.
        state = (seed + 0x9E3779B97F4A7C15) & _MASK64
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
        self._state = (state ^ (state >> 31)) or 1

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= x >> 27
        self._state = x
        return (x * _MULTIPLIER) & _MASK64

    def uniform(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def below(self, bound: int) -> int:
        """An integer in [0, bound)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound


class PerThreadRNG:
    """Lock-free per-thread generators keyed by tid."""

    def __init__(self, process_seed: int, ledger: Optional[CostLedger] = None):
        self._process_seed = process_seed
        self._ledger = ledger or CostLedger()
        self._streams: Dict[int, XorShiftStream] = {}

    def _stream(self, tid: int) -> XorShiftStream:
        stream = self._streams.get(tid)
        if stream is None:
            # Mix the tid into the process seed; distinct tids get
            # decorrelated streams.
            stream = XorShiftStream(self._process_seed * 0x100000001B3 + tid)
            self._streams[tid] = stream
        return stream

    def uniform(self, tid: int) -> float:
        """One sampling draw by thread ``tid`` (charged to the ledger)."""
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).uniform()

    def next_u64(self, tid: int) -> int:
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).next_u64()

    def below(self, tid: int, bound: int) -> int:
        self._ledger.record(EVENT_RNG_DRAW, nanos_each=RNG_DRAW_COST_NS)
        return self._stream(tid).below(bound)

    def streams_created(self) -> int:
        return len(self._streams)
