"""The Termination Handling Unit (§IV-B).

Three responsibilities:

* an exit-time sweep of all live canaries (via the registered exit
  function) so overflows into leaked or still-live objects are found;
* a common handler for erroneous exits (``SIGSEGV``/``SIGABRT``) that
  runs the same sweep before the process dies — a crashing overflow
  still leaves evidence;
* persistence: every allocation calling context observed to overflow is
  written to a file, and future executions preload it with probability
  100%, which is what makes over-write detection *certain* by the second
  run (§V-A2).
"""

from __future__ import annotations

import json
import os
from typing import Callable, List, Optional, Set

from repro.core.canary import CanaryManagementUnit, LiveObject
from repro.core.reporting import (
    KIND_OVER_WRITE,
    OverflowReport,
    SOURCE_EXIT_CANARY,
)
from repro.core.sampling import SamplingManagementUnit, context_signature
from repro.machine.signals import SIGABRT, SIGSEGV, SigInfo, SignalTable
from repro.machine.threads import SimThread

ReportSink = Callable[[OverflowReport], None]

_PERSIST_VERSION = 1


class TerminationHandlingUnit:
    """Exit/crash sweeps and cross-execution evidence persistence."""

    def __init__(
        self,
        signals: SignalTable,
        canary: CanaryManagementUnit,
        sampling: SamplingManagementUnit,
        clock,
        sink: ReportSink,
        persistence_path: Optional[str] = None,
    ):
        self._canary = canary
        self._sampling = sampling
        self._clock = clock
        self._sink = sink
        self._persistence_path = persistence_path
        self._exit_ran = False
        self.crash_sweeps = 0
        # Intercept erroneous exits: "CSOD registers a common signal
        # handler to intercept erroneous exits caused by segmentation
        # faults or aborts."
        signals.sigaction(SIGSEGV, self._on_fatal_signal)
        signals.sigaction(SIGABRT, self._on_fatal_signal)

    # ------------------------------------------------------------------
    # Exit paths
    # ------------------------------------------------------------------
    def on_exit(self) -> List[OverflowReport]:
        """The registered exit function: sweep all live canaries."""
        if self._exit_ran:
            return []
        self._exit_ran = True
        reports = self._sweep()
        self.persist()
        return reports

    def _on_fatal_signal(self, signo: int, info: SigInfo, thread: SimThread) -> None:
        self.crash_sweeps += 1
        self._sweep()
        self.persist()
        # Returning lets the default fatal disposition proceed — CSOD
        # observes the crash, it does not recover from it.

    def _sweep(self) -> List[OverflowReport]:
        reports = []
        for entry in self._canary.sweep_live():
            self._sampling.boost_to_certain(entry.record)
            report = self._evidence_report(entry)
            reports.append(report)
            self._sink(report)
        return reports

    def _evidence_report(self, entry: LiveObject) -> OverflowReport:
        return OverflowReport(
            kind=KIND_OVER_WRITE,  # only writes can corrupt a canary
            source=SOURCE_EXIT_CANARY,
            fault_address=entry.object_address + entry.object_size,
            object_address=entry.object_address,
            object_size=entry.object_size,
            thread_id=-1,
            time_ns=self._clock.now_ns,
            allocation_context=entry.record.context,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def persist(self) -> int:
        """Write every overflow-observed context signature to disk.

        I/O failures are swallowed (returning -1): CSOD runs inside
        arbitrary production processes and must never turn a full disk
        or a read-only mount into an application crash at exit.
        """
        if self._persistence_path is None:
            return 0
        signatures = sorted(
            context_signature(record.context)
            for record in self._sampling.records()
            if record.overflow_observed
        )
        existing = load_persisted(self._persistence_path)
        merged = sorted(existing | set(signatures))
        payload = {"version": _PERSIST_VERSION, "contexts": merged}
        tmp_path = self._persistence_path + ".tmp"
        try:
            with open(tmp_path, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_path, self._persistence_path)
        except OSError:
            return -1
        return len(merged)


def load_persisted(path: Optional[str]) -> Set[str]:
    """Signatures recorded by previous executions (empty if none)."""
    if path is None or not os.path.exists(path):
        return set()
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return set()
    if payload.get("version") != _PERSIST_VERSION:
        return set()
    contexts = payload.get("contexts", [])
    return {s for s in contexts if isinstance(s, str)}
