"""Runtime self-inspection.

An operator running CSOD in production wants to see what the sampler is
doing without a detection: which contexts dominate allocations, where
the probability mass sits, what the four watchpoints hold right now.
``snapshot`` collects that from a live runtime; ``render_snapshot``
prints it; the CLI's ``inspect`` command runs a workload and shows it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.runtime import CSODRuntime
from repro.core.sampling import context_signature
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class ContextRow:
    signature: str
    probability: float
    allocations: int
    watches: int
    pinned: bool


@dataclass(frozen=True)
class WatchRow:
    slot: int
    object_address: int
    object_size: int
    watch_address: int
    install_probability: float
    context_signature: str


@dataclass(frozen=True)
class RuntimeSnapshot:
    contexts: List[ContextRow]
    watches: List[WatchRow]
    probability_histogram: List[Tuple[str, int]]
    allocations: int
    watched_times: int
    replacements: int


_HISTOGRAM_BUCKETS = (
    ("pinned (100%)", lambda p, pinned: pinned),
    (">= 25%", lambda p, pinned: not pinned and p >= 0.25),
    ("1% .. 25%", lambda p, pinned: not pinned and 0.01 <= p < 0.25),
    ("floor .. 1%", lambda p, pinned: not pinned and 1e-5 < p < 0.01),
    ("at floor", lambda p, pinned: not pinned and p <= 1e-5),
)


def snapshot(runtime: CSODRuntime, top_contexts: int = 10) -> RuntimeSnapshot:
    """A structured view of the runtime's sampling state."""
    records = list(runtime.sampling.records())
    rows = [
        ContextRow(
            signature=_short(context_signature(r.context)),
            probability=r.probability,
            allocations=r.allocation_count,
            watches=r.watch_count,
            pinned=r.pinned(),
        )
        for r in records
    ]
    rows.sort(key=lambda r: (-r.allocations, -r.watches))
    histogram = [
        (label, sum(1 for r in records if match(r.probability, r.pinned())))
        for label, match in _HISTOGRAM_BUCKETS
    ]
    watches = [
        WatchRow(
            slot=w.slot_index,
            object_address=w.object_address,
            object_size=w.object_size,
            watch_address=w.watch_address,
            install_probability=w.install_probability,
            context_signature=_short(context_signature(w.record.context)),
        )
        for w in runtime.wmu.watched_objects()
    ]
    stats = runtime.stats()
    return RuntimeSnapshot(
        contexts=rows[:top_contexts],
        watches=watches,
        probability_histogram=histogram,
        allocations=stats.allocations,
        watched_times=stats.watched_times,
        replacements=stats.replacements,
    )


def _short(signature: str, limit: int = 48) -> str:
    head = signature.split("|", 1)[0]
    return head if len(head) <= limit else head[: limit - 3] + "..."


def render_snapshot(snap: RuntimeSnapshot) -> str:
    parts = [
        f"allocations={snap.allocations} watched_times={snap.watched_times} "
        f"replacements={snap.replacements}",
        "",
        render_table(
            ["bucket", "contexts"],
            snap.probability_histogram,
            title="Probability distribution",
        ),
        "",
        render_table(
            ["allocation site", "probability", "allocs", "watches", "pinned"],
            [
                [c.signature, f"{c.probability:.4%}", c.allocations, c.watches,
                 "yes" if c.pinned else ""]
                for c in snap.contexts
            ],
            title="Hottest contexts",
        ),
    ]
    if snap.watches:
        parts += [
            "",
            render_table(
                ["slot", "object", "size", "watching", "p@install", "context"],
                [
                    [w.slot, f"{w.object_address:#x}", w.object_size,
                     f"{w.watch_address:#x}", f"{w.install_probability:.3%}",
                     w.context_signature]
                    for w in snap.watches
                ],
                title="Armed watchpoints",
            ),
        ]
    return "\n".join(parts)
