"""Watchpoint replacement policies (§III-C2).

When all four watchpoints are busy, a new candidate may preempt an
installed one — but only if the candidate's probability beats the
victim's *effective* (age-decayed) probability.  Three policies choose
the victim:

* **naive** — never preempt; a watchpoint lives until its object is
  freed.  Detects bugs only in programs whose overflowing object is
  within the first four allocations (or that have <= 4 contexts).
* **random** — probe a random slot; walk forward until a slot with a
  lower probability is found.
* **near-FIFO** — probe slots starting from a circular pointer at the
  oldest installation; the pointer advances only on replacement (a
  single atomic update in the paper), and deallocations perturb the
  order — hence "near"-FIFO.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import (
    POLICY_NAIVE,
    POLICY_NEAR_FIFO,
    POLICY_RANDOM,
    ReplacementPolicyName,
)
from repro.core.rng import PerThreadRNG
from repro.errors import CSODError

# (slot index, effective probability) for each occupied slot.
SlotView = List[Tuple[int, float]]


class ReplacementPolicy:
    """Interface: pick a victim slot for a candidate, or decline."""

    name: ReplacementPolicyName = "abstract"

    def select_victim(
        self,
        slots: SlotView,
        candidate_probability: float,
        rng: PerThreadRNG,
        tid: int,
    ) -> Optional[int]:
        raise NotImplementedError

    def on_replaced(self, slot_index: int) -> None:
        """Notification that ``slot_index`` was just replaced."""

    def on_freed(self, slot_index: int) -> None:
        """Notification that ``slot_index`` was vacated by a free."""


class NaivePolicy(ReplacementPolicy):
    """No preemption: watchpoints persist until deallocation."""

    name = POLICY_NAIVE

    def select_victim(self, slots, candidate_probability, rng, tid):
        return None


class RandomPolicy(ReplacementPolicy):
    """Probe a random slot, then walk until a weaker one is found."""

    name = POLICY_RANDOM

    def select_victim(self, slots, candidate_probability, rng, tid):
        if not slots:
            return None
        start = rng.below(tid, len(slots))
        for step in range(len(slots)):
            index, probability = slots[(start + step) % len(slots)]
            if probability < candidate_probability:
                return index
        return None


class NearFifoPolicy(ReplacementPolicy):
    """Circular-pointer FIFO, relaxed around deallocations."""

    name = POLICY_NEAR_FIFO

    def __init__(self, slot_count: int = 4):
        self._pointer = 0
        self._slot_count = slot_count

    def select_victim(self, slots, candidate_probability, rng, tid):
        if not slots:
            return None
        by_index = {index: probability for index, probability in slots}
        for step in range(self._slot_count):
            index = (self._pointer + step) % self._slot_count
            probability = by_index.get(index)
            if probability is not None and probability < candidate_probability:
                return index
        return None

    def on_replaced(self, slot_index: int) -> None:
        # The single atomic pointer update of §III-C2: advance past the
        # slot that was just replaced.
        self._pointer = (slot_index + 1) % self._slot_count


def make_policy(name: ReplacementPolicyName, slot_count: int = 4) -> ReplacementPolicy:
    """Instantiate a policy by its configuration name."""
    if name == POLICY_NAIVE:
        return NaivePolicy()
    if name == POLICY_RANDOM:
        return RandomPolicy()
    if name == POLICY_NEAR_FIFO:
        return NearFifoPolicy(slot_count)
    raise CSODError(f"unknown replacement policy {name!r}")
