"""The Canary Management Unit (§IV-B).

In evidence-based mode every heap object is wrapped in the Fig. 5
layout: a 32-byte header before the object and a random 8-byte canary
immediately after it.  Over-writes that escape the four watchpoints
still corrupt the canary; the corruption is discovered at deallocation
(or at exit, for leaked/crashed objects), the context's probability is
boosted to 100%, and — with persistence — the *next* execution watches
that context from its very first allocation.

The unit also keeps the live-object registry the exit-time sweep needs,
which is the in-simulation counterpart of the metadata that costs CSOD
its Table V memory overhead.

The registry is an *index-addressed header table*: four parallel flat
arrays (address, size, real pointer, context record) plus a free-slot
recycling stack, keyed by an address → slot dict.  The hot path touches
only list cells and one dict entry per allocation; no per-allocation
registry object is built.  :class:`LiveObject` survives as an on-demand
view for callers that want one (sweep reports, the oracle, tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rng import PerThreadRNG
from repro.core.sampling import ContextRecord
from repro.errors import CSODError
from repro.heap import layout
from repro.heap.interpose import RawHeap
from repro.machine.machine import Machine
from repro.machine.syscall_cost import (
    CostLedger,
    EVENT_CANARY_CHECK,
    EVENT_CANARY_SET,
)
from repro.machine.threads import SimThread

CANARY_SET_COST_NS = 50
CANARY_CHECK_COST_NS = 70


@dataclass(slots=True)
class LiveObject:
    """View of one live evidence-wrapped object (built on demand)."""

    object_address: int
    object_size: int
    real_object_ptr: int
    record: ContextRecord


class CanaryManagementUnit:
    """Implants and verifies the per-object canaries."""

    def __init__(self, machine: Machine, raw: RawHeap, rng: PerThreadRNG):
        self._machine = machine
        self._raw = raw
        self._ledger: CostLedger = machine.ledger
        # "The canary is a random value" — one secret per process, drawn
        # from the main thread's stream at startup.
        self.canary_value = rng.next_u64(tid=machine.main_thread.tid) or 0xDEAD_BEEF
        # Header table: parallel arrays indexed by slot.  A slot holds
        # exactly one live object; freed slots are recycled LIFO.  Every
        # field of a slot is overwritten on (re)acquisition, so a
        # recycled slot can never leak the previous tenant's size, real
        # pointer, or context.
        self._addr_slot: Dict[int, int] = {}
        self._slot_addr: List[int] = []
        self._slot_size: List[int] = []
        self._slot_real: List[int] = []
        self._slot_record: List[Optional[ContextRecord]] = []
        self._free_slots: List[int] = []
        self.corruption_count = 0

    # ------------------------------------------------------------------
    # Allocation wrapping
    # ------------------------------------------------------------------
    def wrap_allocation(
        self, thread: SimThread, size: int, record: ContextRecord
    ) -> int:
        """Allocate via the raw heap with header+canary; returns the
        user-visible object address."""
        real = self._raw.malloc(
            thread, layout.CSOD_HEADER_SIZE + size + layout.CANARY_SIZE
        )
        object_address = real + layout.CSOD_HEADER_SIZE
        self._implant(object_address, size, real, record)
        return object_address

    def wrap_memalign(
        self, thread: SimThread, alignment: int, size: int, record: ContextRecord
    ) -> int:
        """Aligned allocation: over-allocate and slide the object forward
        so it lands on the requested alignment with the header intact.

        The header's RealObjectPtr field exists precisely so these
        objects can be freed correctly (§IV-B).
        """
        from repro.heap.size_classes import align_up

        padding = max(alignment, layout.CSOD_HEADER_SIZE)
        real = self._raw.malloc(
            thread, padding + layout.CSOD_HEADER_SIZE + size + layout.CANARY_SIZE
        )
        object_address = align_up(real + layout.CSOD_HEADER_SIZE, alignment)
        self._implant(object_address, size, real, record)
        return object_address

    def _implant(
        self, object_address: int, size: int, real: int, record: ContextRecord
    ) -> None:
        memory = self._machine.memory
        layout.write_header(
            memory,
            object_address,
            real_object_ptr=real,
            object_size=size,
            context_ptr=record.key.first_level_ra,
        )
        layout.write_canary(memory, object_address, size, self.canary_value)
        self._ledger.record(EVENT_CANARY_SET, nanos_each=CANARY_SET_COST_NS)
        free_slots = self._free_slots
        if free_slots:
            slot = free_slots.pop()
            self._slot_addr[slot] = object_address
            self._slot_size[slot] = size
            self._slot_real[slot] = real
            self._slot_record[slot] = record
        else:
            slot = len(self._slot_addr)
            self._slot_addr.append(object_address)
            self._slot_size.append(size)
            self._slot_real.append(real)
            self._slot_record.append(record)
        self._addr_slot[object_address] = slot

    # ------------------------------------------------------------------
    # Slot-level access (the batched hot path reads the arrays directly)
    # ------------------------------------------------------------------
    def slot_of(self, object_address: int) -> Optional[int]:
        """Header-table slot of a live object, or None."""
        return self._addr_slot.get(object_address)

    def slot_view(self, slot: int) -> LiveObject:
        """Materialize a :class:`LiveObject` view of one occupied slot."""
        record = self._slot_record[slot]
        assert record is not None, "slot_view on a vacant slot"
        return LiveObject(
            object_address=self._slot_addr[slot],
            object_size=self._slot_size[slot],
            real_object_ptr=self._slot_real[slot],
            record=record,
        )

    def check_slot(self, slot: int) -> bool:
        """Verify one occupied slot's canary; returns corrupted?"""
        self._ledger.record(EVENT_CANARY_CHECK, nanos_each=CANARY_CHECK_COST_NS)
        memory = self._machine.memory
        object_address = self._slot_addr[slot]
        words = layout.read_header_words(memory, object_address)
        if words[3] != layout.HEADER_IDENTIFIER:
            # A corrupted identifier means the *previous* object overran
            # into our header — itself evidence of an overflow there.
            self.corruption_count += 1
            return True
        canary = memory.read_word(object_address + self._slot_size[slot])
        if canary != self.canary_value:
            self.corruption_count += 1
            return True
        return False

    def resize_slot(self, slot: int, new_size: int) -> None:
        """Resize an occupied slot in place (realloc's shrink path).

        Rewrites the header's ObjectSize word and implants a fresh
        canary at the new object end; the slot index, object address,
        real pointer, and context record all survive, so the header
        table sees no allocator traffic at all.
        """
        memory = self._machine.memory
        object_address = self._slot_addr[slot]
        layout.write_object_size(memory, object_address, new_size)
        layout.write_canary(memory, object_address, new_size, self.canary_value)
        self._ledger.record(EVENT_CANARY_SET, nanos_each=CANARY_SET_COST_NS)
        self._slot_size[slot] = new_size

    def release_slot(self, slot: int) -> None:
        """Vacate an occupied slot and recycle its index."""
        address = self._slot_addr[slot]
        del self._addr_slot[address]
        self._slot_record[slot] = None
        self._free_slots.append(slot)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check_object(self, object_address: int) -> Tuple[LiveObject, bool]:
        """Verify one live object's canary; returns (entry, corrupted)."""
        slot = self._addr_slot.get(object_address)
        if slot is None:
            raise CSODError(
                f"object {object_address:#x} is not a live CSOD object"
            )
        corrupted = self.check_slot(slot)
        return self.slot_view(slot), corrupted

    def release(self, object_address: int) -> LiveObject:
        """Drop an object from the live registry (after its free)."""
        slot = self._addr_slot.get(object_address)
        if slot is None:
            raise CSODError(
                f"object {object_address:#x} is not a live CSOD object"
            )
        entry = self.slot_view(slot)
        self.release_slot(slot)
        return entry

    def sweep_live(self) -> List[LiveObject]:
        """Check every live object (exit-time sweep); returns corrupted ones."""
        corrupted = []
        for address in list(self._addr_slot):
            entry, bad = self.check_object(address)
            if bad:
                corrupted.append(entry)
        return corrupted

    def lookup(self, object_address: int) -> Optional[LiveObject]:
        slot = self._addr_slot.get(object_address)
        if slot is None:
            return None
        return self.slot_view(slot)

    def live_count(self) -> int:
        return len(self._addr_slot)
