"""The Canary Management Unit (§IV-B).

In evidence-based mode every heap object is wrapped in the Fig. 5
layout: a 32-byte header before the object and a random 8-byte canary
immediately after it.  Over-writes that escape the four watchpoints
still corrupt the canary; the corruption is discovered at deallocation
(or at exit, for leaked/crashed objects), the context's probability is
boosted to 100%, and — with persistence — the *next* execution watches
that context from its very first allocation.

The unit also keeps the live-object registry the exit-time sweep needs,
which is the in-simulation counterpart of the metadata that costs CSOD
its Table V memory overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rng import PerThreadRNG
from repro.core.sampling import ContextRecord
from repro.errors import CSODError
from repro.heap import layout
from repro.heap.interpose import RawHeap
from repro.machine.machine import Machine
from repro.machine.syscall_cost import (
    CostLedger,
    EVENT_CANARY_CHECK,
    EVENT_CANARY_SET,
)
from repro.machine.threads import SimThread

CANARY_SET_COST_NS = 50
CANARY_CHECK_COST_NS = 70


@dataclass(slots=True)
class LiveObject:
    """Registry entry for one live evidence-wrapped object."""

    object_address: int
    object_size: int
    real_object_ptr: int
    record: ContextRecord


class CanaryManagementUnit:
    """Implants and verifies the per-object canaries."""

    def __init__(self, machine: Machine, raw: RawHeap, rng: PerThreadRNG):
        self._machine = machine
        self._raw = raw
        self._ledger: CostLedger = machine.ledger
        # "The canary is a random value" — one secret per process, drawn
        # from the main thread's stream at startup.
        self.canary_value = rng.next_u64(tid=machine.main_thread.tid) or 0xDEAD_BEEF
        self._live: Dict[int, LiveObject] = {}
        self.corruption_count = 0

    # ------------------------------------------------------------------
    # Allocation wrapping
    # ------------------------------------------------------------------
    def wrap_allocation(
        self, thread: SimThread, size: int, record: ContextRecord
    ) -> int:
        """Allocate via the raw heap with header+canary; returns the
        user-visible object address."""
        real = self._raw.malloc(
            thread, layout.CSOD_HEADER_SIZE + size + layout.CANARY_SIZE
        )
        object_address = real + layout.CSOD_HEADER_SIZE
        self._implant(object_address, size, real, record)
        return object_address

    def wrap_memalign(
        self, thread: SimThread, alignment: int, size: int, record: ContextRecord
    ) -> int:
        """Aligned allocation: over-allocate and slide the object forward
        so it lands on the requested alignment with the header intact.

        The header's RealObjectPtr field exists precisely so these
        objects can be freed correctly (§IV-B).
        """
        from repro.heap.size_classes import align_up

        padding = max(alignment, layout.CSOD_HEADER_SIZE)
        real = self._raw.malloc(
            thread, padding + layout.CSOD_HEADER_SIZE + size + layout.CANARY_SIZE
        )
        object_address = align_up(real + layout.CSOD_HEADER_SIZE, alignment)
        self._implant(object_address, size, real, record)
        return object_address

    def _implant(
        self, object_address: int, size: int, real: int, record: ContextRecord
    ) -> None:
        memory = self._machine.memory
        layout.write_header(
            memory,
            object_address,
            real_object_ptr=real,
            object_size=size,
            context_ptr=record.key.first_level_ra,
        )
        layout.write_canary(memory, object_address, size, self.canary_value)
        self._ledger.record(EVENT_CANARY_SET, nanos_each=CANARY_SET_COST_NS)
        self._live[object_address] = LiveObject(
            object_address=object_address,
            object_size=size,
            real_object_ptr=real,
            record=record,
        )

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check_object(self, object_address: int) -> Tuple[LiveObject, bool]:
        """Verify one live object's canary; returns (entry, corrupted)."""
        entry = self._live.get(object_address)
        if entry is None:
            raise CSODError(
                f"object {object_address:#x} is not a live CSOD object"
            )
        self._ledger.record(EVENT_CANARY_CHECK, nanos_each=CANARY_CHECK_COST_NS)
        header = layout.read_header(self._machine.memory, object_address)
        if not header.is_valid:
            # A corrupted identifier means the *previous* object overran
            # into our header — itself evidence of an overflow there.
            self.corruption_count += 1
            return entry, True
        canary = layout.read_canary(
            self._machine.memory, object_address, entry.object_size
        )
        corrupted = canary != self.canary_value
        if corrupted:
            self.corruption_count += 1
        return entry, corrupted

    def release(self, object_address: int) -> LiveObject:
        """Drop an object from the live registry (after its free)."""
        entry = self._live.pop(object_address, None)
        if entry is None:
            raise CSODError(
                f"object {object_address:#x} is not a live CSOD object"
            )
        return entry

    def sweep_live(self) -> List[LiveObject]:
        """Check every live object (exit-time sweep); returns corrupted ones."""
        corrupted = []
        for address in list(self._live):
            entry, bad = self.check_object(address)
            if bad:
                corrupted.append(entry)
        return corrupted

    def lookup(self, object_address: int) -> Optional[LiveObject]:
        return self._live.get(object_address)

    def live_count(self) -> int:
        return len(self._live)
