"""CSOD — the paper's contribution.

The runtime is organized exactly as the paper's Fig. 1: an Alloc/Dealloc
Monitoring Unit intercepting heap calls, a Sampling Management Unit
adapting per-context probabilities, a Watchpoint Management Unit driving
the four hardware watchpoints through ``perf_event_open``, a Signal
Handling Unit turning SIGTRAPs into dual-context reports, and — for the
evidence-based mode of §IV-B — a Canary Management Unit plus a
Termination Handling Unit with cross-execution persistence.

Typical use::

    machine = Machine(seed=7)
    process = ...                       # a workload process
    csod = CSODRuntime(process, CSODConfig(policy="near_fifo"), seed=7)
    workload.run(process)
    csod.shutdown()
    for report in csod.reports:
        print(report.render(symbols))
"""

from repro.core.config import CSODConfig, ReplacementPolicyName
from repro.core.reporting import OverflowReport
from repro.core.runtime import CSODRuntime
from repro.core.sampling import ContextRecord, SamplingManagementUnit
from repro.core.watchpoints import WatchedObject, WatchpointManagementUnit

__all__ = [
    "CSODConfig",
    "ReplacementPolicyName",
    "OverflowReport",
    "CSODRuntime",
    "ContextRecord",
    "SamplingManagementUnit",
    "WatchedObject",
    "WatchpointManagementUnit",
]
