"""The claims scorecard — artifact-evaluation in one call.

``validate()`` re-checks every *qualitative* claim this reproduction
stakes (the ones EXPERIMENTS.md argues transfer from the paper) at a
configurable scale and returns a pass/fail scorecard.  It is what an
artifact evaluator would run first, and what CI runs to catch a
regression that silently bends the science rather than breaking a unit
test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.experiments import paper_data
from repro.experiments.effectiveness import (
    asan_detection,
    average_detection_rate,
    run_table2,
)
from repro.experiments.evidence import run_evidence_experiment
from repro.experiments.memory_usage import run_table5, totals
from repro.experiments.performance import averages, run_figure7
from repro.experiments.tables import render_table


@dataclass(frozen=True)
class ClaimResult:
    claim: str
    passed: bool
    detail: str


@dataclass
class _Context:
    """Shared measurements, computed once."""

    table2_rows: list
    figure7_rows: list
    asan: dict
    evidence: list
    memory: dict


def _check_naive_split(ctx: _Context) -> ClaimResult:
    always = {r.app for r in ctx.table2_rows if r.rate(POLICY_NAIVE) == 1.0}
    never = {r.app for r in ctx.table2_rows if r.rate(POLICY_NAIVE) == 0.0}
    expected_always = {"gzip", "libdwarf", "libhx", "libtiff", "polymorph"}
    expected_never = {"heartbleed", "memcached", "mysql", "zziplib"}
    ok = always == expected_always and never == expected_never
    return ClaimResult(
        "naive policy detects exactly the early-victim apps (§V-A1)",
        ok,
        f"always={sorted(always)} never={sorted(never)}",
    )


def _check_adaptive_band(ctx: _Context) -> ClaimResult:
    rates = [
        r.rate(policy)
        for r in ctx.table2_rows
        for policy in (POLICY_RANDOM, POLICY_NEAR_FIFO)
    ]
    average = average_detection_rate(ctx.table2_rows, POLICY_RANDOM)
    ok = all(0.02 <= rate <= 1.0 for rate in rates) and 0.40 <= average <= 0.75
    return ClaimResult(
        "adaptive policies: 10-100% band, ~58% average (Table II)",
        ok,
        f"min={min(rates):.0%} max={max(rates):.0%} random-avg={average:.0%}",
    )


def _check_asan_coverage(ctx: _Context) -> ClaimResult:
    missed = {name for name, detected in ctx.asan.items() if not detected}
    ok = missed == set(paper_data.ASAN_MISSED_APPS)
    return ClaimResult(
        "ASan misses exactly the uninstrumented-library bugs (§V-A1)",
        ok,
        f"missed={sorted(missed)}",
    )


def _check_second_run_guarantee(ctx: _Context) -> ClaimResult:
    ok = all(r.guarantee_holds for r in ctx.evidence)
    detail = ", ".join(
        f"{r.app}:{r.second_run_detected}/{r.first_run_missed}"
        for r in ctx.evidence
    )
    return ClaimResult(
        "over-writes always detected by the second execution (§V-A2)",
        ok,
        detail,
    )


def _check_figure7_shape(ctx: _Context) -> ClaimResult:
    over_10 = {r.app for r in ctx.figure7_rows if r.csod_no_evidence > 1.10}
    avg = averages(ctx.figure7_rows)
    ok = (
        over_10 == {"canneal", "ferret", "raytrace"}
        and avg["csod"] < 1.10
        and 1.2 <= avg["asan"] <= 1.6
        and all(
            r.csod < 1.03
            for r in ctx.figure7_rows
            if r.app in ("aget", "pfscan")
        )
    )
    return ClaimResult(
        "overhead shape: 3 CSOD outliers, single-digit average, "
        "ASan ~5-8x costlier (Fig. 7)",
        ok,
        f"outliers={sorted(over_10)} csod-avg={avg['csod']:.3f} "
        f"asan-avg={avg['asan']:.3f}",
    )


def _check_memory_shape(ctx: _Context) -> ClaimResult:
    ok = (
        ctx.memory["csod_pct"] <= 118
        and 125 <= ctx.memory["asan_pct"] <= 165
    )
    return ClaimResult(
        "memory: CSOD ~105% of original in total, ASan ~143% (Table V)",
        ok,
        f"csod={ctx.memory['csod_pct']:.0f}% asan={ctx.memory['asan_pct']:.0f}%",
    )


def _check_no_false_positives(ctx: _Context) -> ClaimResult:
    from repro.core import CSODConfig, CSODRuntime
    from repro.workloads.base import SimProcess
    from repro.workloads.perf import perf_app_for

    for name in ("streamcluster", "vips"):
        process = SimProcess(seed=3)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=3)
        perf_app_for(name, 2000).run(process, csod)
        csod.shutdown()
        if csod.detected:
            return ClaimResult(
                "no false positives on clean workloads", False, f"{name} reported"
            )
    return ClaimResult(
        "no false positives on clean workloads", True, "clean replays silent"
    )


def validate(runs: int = 40, cap: int = 4000, evidence_attempts: int = 8) -> List[ClaimResult]:
    """Run the scorecard.  ``runs`` trades confidence for wall-clock."""
    ctx = _Context(
        table2_rows=run_table2(runs=runs),
        figure7_rows=run_figure7(sim_alloc_cap=cap),
        asan=asan_detection(),
        evidence=run_evidence_experiment(attempts=evidence_attempts),
        memory=totals(run_table5()),
    )
    checks: List[Callable[[_Context], ClaimResult]] = [
        _check_naive_split,
        _check_adaptive_band,
        _check_asan_coverage,
        _check_second_run_guarantee,
        _check_figure7_shape,
        _check_memory_shape,
        _check_no_false_positives,
    ]
    return [check(ctx) for check in checks]


def render_validation(results: List[ClaimResult]) -> str:
    body = [
        ["PASS" if r.passed else "FAIL", r.claim, r.detail] for r in results
    ]
    passed = sum(r.passed for r in results)
    table = render_table(
        ["verdict", "claim", "measured"],
        body,
        title="Paper-claims scorecard",
    )
    return f"{table}\n\n{passed}/{len(results)} claims validated"
