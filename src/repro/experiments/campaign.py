"""Multi-execution detection campaigns.

The paper's deployment claim (§I, §VI): a per-execution probability of
10-100% is enough, because production software runs many times —
"although CSOD may miss a particular bug in a certain execution, it will
catch this bug eventually with a sufficient number of executions", and
across the 1,000-execution protocol no bug was missed.

This driver quantifies that: cumulative detection curves, time-to-first
detection, Wilson confidence intervals on the per-execution rate, and
the evidence-sharing acceleration for over-writes.

The executions themselves run on the fleet subsystem
(:mod:`repro.fleet`): ``workers=1`` (the default) keeps the historical
serial semantics — evidence persisted by execution *i* is visible to
execution *i+1* — while ``workers=N`` fans the campaign out over N
worker processes with evidence synchronised at wave boundaries.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import POLICY_RANDOM
from repro.experiments.tables import render_table


def wilson_interval(hits: int, trials: int, z: float = 1.96):
    """The Wilson score interval for a binomial rate."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= hits <= trials:
        raise ValueError("hits must be within [0, trials]")
    p = hits / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


@dataclass
class CampaignResult:
    """One application's multi-execution campaign."""

    app: str
    executions: int
    detections: List[bool]
    share_evidence: bool

    @property
    def hits(self) -> int:
        return sum(self.detections)

    @property
    def rate(self) -> float:
        return self.hits / self.executions

    @property
    def rate_interval(self):
        return wilson_interval(self.hits, self.executions)

    @property
    def first_detection(self) -> Optional[int]:
        """1-based execution index of the first catch, or None."""
        for index, hit in enumerate(self.detections):
            if hit:
                return index + 1
        return None

    def cumulative_curve(self) -> List[float]:
        """P(caught at least once) after each execution, empirically.

        For independent executions this is 1-(1-p)^n with the measured
        p; with evidence sharing the empirical curve races ahead of it.
        """
        curve = []
        caught = False
        for hit in self.detections:
            caught = caught or hit
            curve.append(1.0 if caught else 0.0)
        return curve


def run_campaign(
    app_name: str,
    executions: int = 100,
    policy: str = POLICY_RANDOM,
    share_evidence: bool = False,
    seed_base: int = 0,
    workdir: Optional[str] = None,
    workers: int = 1,
    bug_db=None,
    campaign_id: Optional[str] = None,
) -> CampaignResult:
    """Execute ``app_name`` repeatedly, optionally sharing evidence.

    ``workdir`` names a directory for the shared evidence file (kept
    for the caller to inspect); without it a temporary store is used
    and removed afterwards — even when an execution raises, which the
    old ``tempfile.mkdtemp`` plumbing never cleaned up.

    ``bug_db`` (a :class:`repro.triage.BugDatabase`) makes the campaign
    feed the persistent triage corpus at completion, exactly as
    :func:`repro.fleet.runner.run_fleet` does.
    """
    # Imported here, not at module level: fleet.aggregate reuses this
    # module's wilson_interval, so a top-level import would be circular.
    from repro.fleet.evidence_store import EvidenceStore, TemporaryEvidenceStore
    from repro.fleet.runner import run_fleet

    store = None
    try:
        if share_evidence:
            store = (
                EvidenceStore(os.path.join(workdir, f"{app_name}.json"))
                if workdir
                else TemporaryEvidenceStore(prefix="csod-campaign-")
            )
        fleet = run_fleet(
            app_name,
            executions=executions,
            workers=workers,
            policy=policy,
            share_evidence=share_evidence,
            seed_base=seed_base,
            evidence_store=store,
            bug_db=bug_db,
            campaign_id=campaign_id,
        )
    finally:
        if isinstance(store, TemporaryEvidenceStore):
            store.cleanup()
    return CampaignResult(
        app=app_name,
        executions=executions,
        detections=fleet.detections,
        share_evidence=share_evidence,
    )


def expected_executions(rate: float) -> float:
    """Expected executions until first detection at a fixed rate."""
    if not 0 < rate <= 1:
        return math.inf
    return 1.0 / rate


def render_campaigns(results: List[CampaignResult]) -> str:
    body = []
    for r in results:
        lo, hi = r.rate_interval
        body.append(
            [
                r.app,
                "shared" if r.share_evidence else "indep",
                r.executions,
                f"{r.rate:.1%}",
                f"[{lo:.1%}, {hi:.1%}]",
                r.first_detection if r.first_detection else "never",
                f"{expected_executions(r.rate):.1f}" if r.hits else "inf",
            ]
        )
    return render_table(
        [
            "Application",
            "evidence",
            "executions",
            "rate",
            "95% CI",
            "first catch",
            "E[catch]",
        ],
        body,
        title="Multi-execution detection campaigns",
    )
