"""Fig. 7 — normalized performance overhead.

For every application, four configurations are evaluated exactly as the
figure plots them: CSOD without evidence, full CSOD, ASan with minimal
redzones, and default ASan.  The CSOD columns come from replaying the
trace under the real runtime and extrapolating the event ledger; the
ASan columns combine the replayed allocation-side costs with the
analytic access-check term (see :mod:`repro.perfmodel.accounting`).
Freqmine carries no ASan bars — it crashed under ASan in the paper's
environment, and the driver reproduces the omission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.experiments import paper_data
from repro.experiments.tables import render_table
from repro.perfmodel.accounting import (
    asan_crashes,
    asan_overhead_fraction,
    csod_overhead_fraction,
)
from repro.workloads.base import SimProcess
from repro.workloads.perf import PERF_APPS, perf_app_for


@dataclass(frozen=True)
class Figure7Row:
    """Normalized runtimes (1.0 = default Linux) for one application."""

    app: str
    csod_no_evidence: float
    csod: float
    asan_minimal: float
    asan: float
    paper_csod: float
    paper_asan: float

    def series(self) -> List[float]:
        return [self.csod_no_evidence, self.csod, self.asan_minimal, self.asan]


def measure_app(
    name: str, seed: int = 7, sim_alloc_cap: int = 8000
) -> Figure7Row:
    """All four Fig. 7 configurations for one application."""
    spec = PERF_APPS[name]
    app = perf_app_for(name, sim_alloc_cap)

    def csod_run(config: CSODConfig) -> float:
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, config, seed=seed)
        measurement = app.run(process, csod)
        csod.shutdown()
        return csod_overhead_fraction(measurement)

    f_no_evidence = csod_run(CSODConfig(evidence_enabled=False))
    f_csod = csod_run(CSODConfig())

    if asan_crashes(name):
        f_asan_min = f_asan = float("nan")
    else:
        process = SimProcess(seed=seed)
        asan = ASanRuntime(process.machine, process.heap)
        measurement = app.run(process)
        asan.shutdown()
        f_asan_min = asan_overhead_fraction(measurement, minimal_redzones=True)
        f_asan = asan_overhead_fraction(measurement, minimal_redzones=False)

    return Figure7Row(
        app=name,
        csod_no_evidence=1.0 + f_no_evidence,
        csod=1.0 + f_csod,
        asan_minimal=1.0 + f_asan_min,
        asan=1.0 + f_asan,
        paper_csod=1.0 + spec.paper_csod_overhead,
        paper_asan=(
            1.0 + spec.paper_asan_overhead
            if not math.isnan(spec.paper_asan_overhead)
            else float("nan")
        ),
    )


def run_figure7(
    apps: Optional[Sequence[str]] = None,
    seed: int = 7,
    sim_alloc_cap: int = 8000,
) -> List[Figure7Row]:
    return [measure_app(name, seed, sim_alloc_cap) for name in apps or PERF_APPS]


def averages(rows: Sequence[Figure7Row]) -> dict:
    """The figure's Average cluster (ASan averages skip crashes)."""
    asan_rows = [r for r in rows if not math.isnan(r.asan)]
    return {
        "csod_no_evidence": sum(r.csod_no_evidence for r in rows) / len(rows),
        "csod": sum(r.csod for r in rows) / len(rows),
        "asan_minimal": sum(r.asan_minimal for r in asan_rows) / len(asan_rows),
        "asan": sum(r.asan for r in asan_rows) / len(asan_rows),
    }


def render_figure7_chart(rows: Sequence[Figure7Row]) -> str:
    """The figure itself, as grouped ASCII bars (clipped like the paper)."""
    from repro.experiments.charts import grouped_bar_chart

    return grouped_bar_chart(
        [r.app for r in rows],
        ["CSOD w/o Evidence", "CSOD", "ASan min-redzones", "ASan"],
        [r.series() for r in rows],
        ceiling=2.0,
        title="Figure 7 — normalized overhead (bars clipped at 2.0x)",
    )


def render_figure7(rows: Sequence[Figure7Row]) -> str:
    body = [
        [
            r.app,
            f"{r.csod_no_evidence:.3f}",
            f"{r.csod:.3f}",
            f"{r.asan_minimal:.3f}" if not math.isnan(r.asan_minimal) else "-",
            f"{r.asan:.3f}" if not math.isnan(r.asan) else "-",
            f"{r.paper_csod:.2f}",
            f"{r.paper_asan:.2f}" if not math.isnan(r.paper_asan) else "-",
        ]
        for r in rows
    ]
    avg = averages(rows)
    body.append(
        [
            "AVERAGE",
            f"{avg['csod_no_evidence']:.3f}",
            f"{avg['csod']:.3f}",
            f"{avg['asan_minimal']:.3f}",
            f"{avg['asan']:.3f}",
            f"{1 + paper_data.FIGURE7_CSOD_AVERAGE:.3f}",
            f"{1 + paper_data.FIGURE7_ASAN_AVERAGE:.3f}",
        ]
    )
    return render_table(
        [
            "Application",
            "CSOD w/o Evidence",
            "CSOD",
            "ASan min-redzones",
            "ASan",
            "paper CSOD",
            "paper ASan",
        ],
        body,
        title="Figure 7 — normalized overhead (1.0 = default Linux)",
    )
