"""The published numbers, verbatim, for side-by-side comparison.

Transcribed from the paper (CGO 2019).  Nothing in here feeds the
simulation — these values are only printed next to the measured ones so
the benchmark output shows paper-vs-measured for every table and figure.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Table I — applications used for effectiveness evaluation
# ----------------------------------------------------------------------
TABLE1 = {
    "gzip": ("Over-write", "BugBench"),
    "heartbleed": ("Over-read", "CVE-2014-0160"),
    "libdwarf": ("Over-read", "CVE-2016-9276"),
    "libhx": ("Over-write", "CVE-2010-2947"),
    "libtiff": ("Over-write", "CVE-2013-4243"),
    "memcached": ("Over-write", "CVE-2016-8706"),
    "mysql": ("Over-write", "CVE-2012-5612"),
    "polymorph": ("Over-write", "BugBench"),
    "zziplib": ("Over-read", "CVE-2017-5974"),
}

# ----------------------------------------------------------------------
# Table II — detections out of 1,000 executions, per replacement policy
# ----------------------------------------------------------------------
TABLE2 = {
    # app: (naive, random, near_fifo)
    "gzip": (1000, 1000, 1000),
    "heartbleed": (0, 364, 396),
    "libdwarf": (1000, 480, 459),
    "libhx": (1000, 929, 885),
    "libtiff": (1000, 1000, 1000),
    "memcached": (0, 163, 183),
    "mysql": (0, 161, 174),
    "polymorph": (1000, 1000, 1000),
    "zziplib": (0, 110, 102),
}

TABLE2_AVERAGE_DETECTION = 0.58  # "with 58% on average"

# ----------------------------------------------------------------------
# Table III — contexts/allocations, total and before the overflow
# ----------------------------------------------------------------------
TABLE3 = {
    # app: (total contexts, total allocations, before contexts, before allocs)
    "gzip": (1, 1, 1, 1),
    "heartbleed": (307, 5403, 273, 5392),
    "libdwarf": (26, 152, 24, 147),
    "libhx": (4, 5, 1, 1),
    "libtiff": (1, 1, 1, 1),
    "memcached": (74, 442, 74, 442),
    "mysql": (488, 57464, 445, 57356),
    "polymorph": (1, 1, 1, 1),
    "zziplib": (13, 17, 13, 17),
}

# ----------------------------------------------------------------------
# Table IV — characteristics of the performance applications
# ----------------------------------------------------------------------
TABLE4 = {
    # app: (LOC, calling contexts, allocations, watched times)
    "blackscholes": (479, 4, 4, 4),
    "bodytrack": (11938, 81, 431022, 325),
    "canneal": (4530, 10, 30728172, 79),
    "dedup": (37307, 93, 4074135, 182),
    "facesim": (45748, 109, 4746070, 369),
    "ferret": (40997, 118, 139246, 346),
    "fluidanimate": (880, 2, 229910, 5),
    "freqmine": (2709, 125, 4255, 218),
    "raytrace": (36871, 63, 45037327, 561),
    "streamcluster": (2043, 21, 8861, 30),
    "swaptions": (1631, 10, 48001795, 370),
    "vips": (206059, 400, 1425257, 259),
    "x264": (33817, 60, 35753, 37),
    "aget": (1205, 14, 46, 16),
    "apache": (269126, 56, 357, 27),
    "memcached": (14748, 85, 468, 79),
    "mysql": (1290401, 1186, 1565311, 1362),
    "pbzip2": (12108, 13, 57746, 58),
    "pfscan": (1091, 6, 6, 5),
}

# ----------------------------------------------------------------------
# Table V — memory usage in KB (original, CSOD, ASan-minimal-redzones)
# ----------------------------------------------------------------------
TABLE5 = {
    # app: (original, csod_kb, csod_pct, asan_kb, asan_pct); None = crash
    "blackscholes": (613, 630, 103, 673, 110),
    "bodytrack": (34, 51, 151, 362, 1079),
    "canneal": (940, 1353, 144, 1586, 169),
    "dedup": (1599, 1781, 111, 1530, 96),
    "facesim": (2422, 2462, 102, 3228, 133),
    "ferret": (68, 90, 133, 413, 610),
    "fluidanimate": (408, 434, 106, 489, 120),
    "freqmine": (1241, 1262, 102, None, None),
    "raytrace": (1135, 1306, 115, 2523, 222),
    "streamcluster": (111, 128, 115, 151, 136),
    "swaptions": (9, 27, 289, 390, 4178),
    "vips": (59, 78, 133, 333, 570),
    "x264": (486, 507, 104, 693, 142),
    "aget": (7, 23, 359, 21, 320),
    "apache": (5, 28, 523, 25, 477),
    "memcached": (7, 26, 391, 24, 359),
    "mysql": (124, 145, 117, 395, 317),
    "pbzip2": (128, 148, 116, 411, 322),
    "pfscan": (4044, 3688, 91, 4142, 102),
}

TABLE5_TOTAL = {"original": 13439, "csod": 14167, "asan": 17386}
TABLE5_CSOD_TOTAL_PCT = 105
TABLE5_ASAN_TOTAL_PCT = 143

# ----------------------------------------------------------------------
# Fig. 7 — headline overhead numbers (the text pins the averages)
# ----------------------------------------------------------------------
FIGURE7_CSOD_AVERAGE = 0.067
FIGURE7_CSOD_NO_EVIDENCE_AVERAGE = 0.043
FIGURE7_ASAN_AVERAGE = 0.39
FIGURE7_OVER_10PCT_WITHOUT_EVIDENCE = ("canneal", "ferret", "raytrace")
FIGURE7_ASAN_CRASHED = ("freqmine",)
FIGURE7_TALLEST_ASAN_BARS = 2.24  # the clipped x264 bars

# ASan detection coverage discussed alongside Table II: bugs inside
# uninstrumented shared libraries are missed.
ASAN_MISSED_APPS = ("libtiff", "libhx", "zziplib")
