"""ASCII charts for experiment output.

``grouped_bar_chart`` renders the Fig. 7 shape — one cluster of bars per
application, one bar per configuration — as fixed-width text, with the
same clipping behaviour as the paper's plot (bars past the axis ceiling
print their value, like the figure's "2.23/2.24" annotations).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def horizontal_bar(value: float, ceiling: float, width: int) -> str:
    """One bar scaled into ``width`` characters; NaN renders as absent."""
    if value != value:  # NaN
        return "(n/a)"
    clipped = min(value, ceiling)
    filled = int(round(width * clipped / ceiling))
    bar = "#" * filled + "." * (width - filled)
    label = f" {value:.2f}"
    if value > ceiling:
        label += " (clipped)"
    return bar + label


def grouped_bar_chart(
    group_labels: Sequence[str],
    series_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    ceiling: Optional[float] = None,
    width: int = 40,
    title: str = "",
) -> str:
    """Render groups of horizontal bars.

    ``values[g][s]`` is the bar for group ``g``, series ``s``.
    """
    if len(values) != len(group_labels):
        raise ValueError("one value row per group label required")
    for row in values:
        if len(row) != len(series_labels):
            raise ValueError("one value per series label required")
    if ceiling is None:
        finite = [v for row in values for v in row if v == v]
        ceiling = max(finite) if finite else 1.0
    label_width = max((len(s) for s in series_labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for group, row in zip(group_labels, values):
        lines.append(f"{group}:")
        for series, value in zip(series_labels, row):
            lines.append(
                f"  {series.ljust(label_width)} |{horizontal_bar(value, ceiling, width)}"
            )
        lines.append("")
    lines.append(f"scale: full bar = {ceiling:.2f}")
    return "\n".join(lines)
