"""§V-A2 — evidence-based overflow detection across executions.

The paper's claim: "CSOD can always detect these over-write problems
during their second execution, if missed in the first execution."  The
driver reproduces the protocol: for each over-write application, find
executions where the watchpoints missed the bug, confirm that the canary
evidence was recorded and persisted, then re-run with the persisted file
and require a watchpoint detection.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.workloads.base import KIND_OVER_WRITE, SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for


def overwrite_apps() -> List[str]:
    """The six Table I applications with buffer over-writes."""
    return sorted(
        name for name, spec in BUGGY_APPS.items() if spec.bug_kind == KIND_OVER_WRITE
    )


@dataclass(frozen=True)
class EvidenceResult:
    app: str
    first_run_missed: int  # runs where watchpoints missed
    evidence_recorded: int  # of those, runs that left canary evidence
    second_run_detected: int  # of those, second runs that detected

    @property
    def guarantee_holds(self) -> bool:
        return (
            self.first_run_missed
            == self.evidence_recorded
            == self.second_run_detected
        )


def run_evidence_experiment(
    apps: Optional[Sequence[str]] = None,
    attempts: int = 25,
    workdir: Optional[str] = None,
) -> List[EvidenceResult]:
    """Pair-of-executions protocol for each over-write application."""
    workdir = workdir or tempfile.mkdtemp(prefix="csod-evidence-")
    results = []
    for name in apps or overwrite_apps():
        app = app_for(name)
        missed = evidence = second = 0
        for seed in range(attempts):
            path = os.path.join(workdir, f"{name}-{seed}.json")
            first = _run(name, seed, path)
            if first.detected_by_watchpoint:
                continue  # the paper's guarantee concerns missed runs
            missed += 1
            if first.detected and os.path.exists(path):
                evidence += 1
            # Second execution, different seed, same persisted evidence.
            second_run = _run(name, seed + 100_000, path)
            if second_run.detected_by_watchpoint:
                second += 1
        results.append(
            EvidenceResult(
                app=name,
                first_run_missed=missed,
                evidence_recorded=evidence,
                second_run_detected=second,
            )
        )
    return results


def _run(name: str, seed: int, persistence_path: str) -> CSODRuntime:
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(persistence_path=persistence_path),
        seed=seed,
    )
    app_for(name).run(process)
    csod.shutdown()
    return csod


def render_evidence(results: Sequence[EvidenceResult]) -> str:
    body = [
        [
            r.app,
            r.first_run_missed,
            r.evidence_recorded,
            r.second_run_detected,
            "yes" if r.guarantee_holds else "NO",
        ]
        for r in results
    ]
    return render_table(
        ["Application", "1st-run misses", "evidence recorded", "2nd-run detections", "guarantee"],
        body,
        title="§V-A2 — evidence-based detection across executions",
    )
