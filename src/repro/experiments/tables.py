"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:,.0f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)
