"""Table I / Table II / Fig. 6 — effectiveness experiments.

``run_table2`` re-runs every buggy application N times per replacement
policy (the paper used 1,000; the default here is smaller so the bench
finishes in minutes of pure Python — pass ``runs=1000`` for the full
protocol) and counts the executions in which the overflow was caught by
a *watchpoint*.  Canary-only evidence is tallied separately: it tells
the user an overflow happened, but the faulting statement — the Fig. 6
root cause — comes from the watchpoint trap, which is what Table II
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.experiments import paper_data
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.buggy import BUGGY_APPS, app_for

POLICIES = (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO)
DEFAULT_RUNS = 200


@dataclass(frozen=True)
class EffectivenessRow:
    """One Table II row: detections per policy, plus the paper's."""

    app: str
    runs: int
    detections: Dict[str, int]  # policy -> watchpoint detections
    evidence_detections: Dict[str, int]  # policy -> canary evidence
    paper: Dict[str, int]  # policy -> detections /1000

    def rate(self, policy: str) -> float:
        return self.detections[policy] / self.runs

    def paper_rate(self, policy: str) -> float:
        return self.paper[policy] / 1000.0


def run_app_once(
    name: str,
    seed: int,
    policy: str = POLICY_RANDOM,
    config: Optional[CSODConfig] = None,
) -> CSODRuntime:
    """One execution of one buggy app under CSOD; returns the runtime."""
    app = app_for(name)
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        config or CSODConfig(replacement_policy=policy),
        seed=seed,
    )
    app.run(process)
    csod.shutdown()
    return csod


def run_table2(
    runs: int = DEFAULT_RUNS,
    apps: Optional[Sequence[str]] = None,
    policies: Sequence[str] = POLICIES,
) -> List[EffectivenessRow]:
    """The Table II protocol: ``runs`` executions per app per policy."""
    rows = []
    for name in apps or sorted(BUGGY_APPS):
        detections = {}
        evidence = {}
        for policy in policies:
            hits = 0
            canary_hits = 0
            for seed in range(runs):
                csod = run_app_once(name, seed, policy)
                if csod.detected_by_watchpoint:
                    hits += 1
                elif csod.detected:
                    canary_hits += 1
            detections[policy] = hits
            evidence[policy] = canary_hits
        rows.append(
            EffectivenessRow(
                app=name,
                runs=runs,
                detections=detections,
                evidence_detections=evidence,
                paper={
                    POLICY_NAIVE: paper_data.TABLE2[name][0],
                    POLICY_RANDOM: paper_data.TABLE2[name][1],
                    POLICY_NEAR_FIFO: paper_data.TABLE2[name][2],
                },
            )
        )
    return rows


def average_detection_rate(
    rows: Sequence[EffectivenessRow], policy: str = POLICY_RANDOM
) -> float:
    """The paper's "58% on average" aggregate."""
    return sum(row.rate(policy) for row in rows) / len(rows)


def render_table2(rows: Sequence[EffectivenessRow]) -> str:
    headers = ["Application", "Runs"]
    for policy in POLICIES:
        headers += [f"{policy}", f"paper/{policy}"]
    body = []
    for row in rows:
        cells: List[object] = [row.app, row.runs]
        for policy in POLICIES:
            cells.append(f"{row.rate(policy):.1%}")
            cells.append(f"{row.paper_rate(policy):.1%}")
        body.append(cells)
    avg: List[object] = ["AVERAGE", ""]
    for policy in POLICIES:
        avg.append(f"{average_detection_rate(rows, policy):.1%}")
        paper_avg = sum(r.paper_rate(policy) for r in rows) / len(rows)
        avg.append(f"{paper_avg:.1%}")
    body.append(avg)
    return render_table(headers, body, title="Table II — effectiveness")


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_rows() -> List[List[str]]:
    rows = []
    for name in sorted(BUGGY_APPS):
        spec = BUGGY_APPS[name]
        paper_kind, paper_ref = paper_data.TABLE1[name]
        rows.append(
            [name, spec.bug_kind, spec.reference, paper_kind.lower(), paper_ref]
        )
    return rows


def render_table1() -> str:
    return render_table(
        ["Application", "Vulnerability", "Reference", "paper/vuln", "paper/ref"],
        table1_rows(),
        title="Table I — applications",
    )


# ----------------------------------------------------------------------
# ASan comparison (the §V-A1 discussion)
# ----------------------------------------------------------------------
def asan_detection(apps: Optional[Sequence[str]] = None, seed: int = 11) -> Dict[str, bool]:
    """Whether ASan (uninstrumented libraries) detects each bug."""
    results = {}
    for name in apps or sorted(BUGGY_APPS):
        process = SimProcess(seed=seed)
        asan = ASanRuntime(process.machine, process.heap)
        app_for(name).run(process)
        asan.shutdown()
        results[name] = asan.detected
    return results


# ----------------------------------------------------------------------
# Fig. 6 — the bug report
# ----------------------------------------------------------------------
def figure6_report(seed_limit: int = 64) -> str:
    """A Heartbleed dual-context report, like the paper's Fig. 6."""
    for seed in range(seed_limit):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=seed)
        app_for("heartbleed").run(process)
        csod.shutdown()
        watchpoint_reports = [r for r in csod.reports if r.source == "watchpoint"]
        if watchpoint_reports:
            return watchpoint_reports[0].render(process.symbols)
    raise RuntimeError("no detection within the seed budget")
