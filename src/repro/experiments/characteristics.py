"""Table III and Table IV — application characteristics.

Table III counts allocation calling contexts and allocations, total and
before the overflow access, by tracing one full-scale execution of each
buggy application under CSOD.

Table IV replays each performance application under CSOD and reports
contexts, allocations (full-scale, from the spec), and the measured
watched-times, next to the published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import CSODConfig, CSODRuntime
from repro.experiments import paper_data
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess, SyntheticBuggyApp
from repro.workloads.buggy import BUGGY_APPS, spec_for
from repro.workloads.perf import PERF_APPS, perf_app_for


@dataclass(frozen=True)
class Table3Row:
    app: str
    total_contexts: int
    total_allocations: int
    before_contexts: int
    before_allocations: int
    paper: tuple


def run_table3(apps: Optional[Sequence[str]] = None, seed: int = 3) -> List[Table3Row]:
    """Trace each buggy app once, at full scale, and count."""
    rows = []
    for name in apps or sorted(BUGGY_APPS):
        spec = spec_for(name)
        app = SyntheticBuggyApp(spec)  # full scale, no effectiveness shrink
        events = app.events
        victim_access_index = spec.before_allocations  # access after this many
        before = events[:victim_access_index]
        rows.append(
            Table3Row(
                app=name,
                total_contexts=len({e.context_id for e in events}),
                total_allocations=len(events),
                before_contexts=len({e.context_id for e in before}),
                before_allocations=len(before),
                paper=paper_data.TABLE3[name],
            )
        )
    return rows


def render_table3(rows: Sequence[Table3Row]) -> str:
    body = []
    for r in rows:
        body.append(
            [
                r.app,
                r.total_contexts,
                r.total_allocations,
                r.before_contexts,
                r.before_allocations,
                f"{r.paper[0]}/{r.paper[1]}/{r.paper[2]}/{r.paper[3]}",
            ]
        )
    return render_table(
        ["Application", "CC", "Allocations", "CC before", "Allocs before", "paper CC/Alloc/bCC/bAlloc"],
        body,
        title="Table III — buggy application characteristics",
    )


@dataclass(frozen=True)
class Table4Row:
    app: str
    loc: int
    contexts: int
    allocations: int
    watched_times: int
    paper_watched_times: int


def run_table4(
    apps: Optional[Sequence[str]] = None,
    seed: int = 7,
    sim_alloc_cap: int = 8000,
) -> List[Table4Row]:
    """Replay each perf app under CSOD and read the WT counter."""
    rows = []
    for name in apps or list(PERF_APPS):
        spec = PERF_APPS[name]
        app = perf_app_for(name, sim_alloc_cap)
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=seed)
        measurement = app.run(process, csod)
        csod.shutdown()
        rows.append(
            Table4Row(
                app=name,
                loc=spec.loc,
                contexts=spec.contexts,
                allocations=spec.allocations,
                watched_times=measurement.watched_times,
                paper_watched_times=spec.paper_watched_times,
            )
        )
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    body = [
        [r.app, r.loc, r.contexts, r.allocations, r.watched_times, r.paper_watched_times]
        for r in rows
    ]
    return render_table(
        ["Application", "LOC", "CC", "Allocations", "WT (measured)", "WT (paper)"],
        body,
        title="Table IV — performance application characteristics",
    )
