"""Table V — memory usage.

Peak footprint for the default library, CSOD (evidence mode on, as the
paper measured), and ASan with minimal 16-byte redzones, from the
object-envelope model in :mod:`repro.perfmodel.memory`, printed next to
the published VmHWM/maxresident numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import paper_data
from repro.experiments.tables import render_table
from repro.perfmodel.memory import MemoryFootprint, memory_for
from repro.workloads.perf import PERF_APPS


@dataclass(frozen=True)
class Table5Row:
    app: str
    footprint: MemoryFootprint
    paper: tuple  # (orig, csod_kb, csod_pct, asan_kb, asan_pct)


def run_table5(apps: Optional[Sequence[str]] = None) -> List[Table5Row]:
    return [
        Table5Row(
            app=name,
            footprint=memory_for(PERF_APPS[name]),
            paper=paper_data.TABLE5[name],
        )
        for name in (apps or PERF_APPS)
    ]


def totals(rows: Sequence[Table5Row]) -> dict:
    original = sum(r.footprint.original_kb for r in rows)
    csod = sum(r.footprint.csod_kb for r in rows)
    asan = sum(r.footprint.asan_kb for r in rows)
    return {
        "original": original,
        "csod": csod,
        "asan": asan,
        "csod_pct": 100.0 * csod / original,
        "asan_pct": 100.0 * asan / original,
    }


def render_table5(rows: Sequence[Table5Row]) -> str:
    body = []
    for r in rows:
        f = r.footprint
        paper_csod = r.paper[1]
        paper_asan = r.paper[3] if r.paper[3] is not None else "-"
        body.append(
            [
                r.app,
                f"{f.original_kb:,.0f}",
                f"{f.csod_kb:,.0f}",
                f"{f.csod_percent:.0f}%",
                f"{f.asan_kb:,.0f}",
                f"{f.asan_percent:.0f}%",
                f"{paper_csod}/{paper_asan}",
            ]
        )
    t = totals(rows)
    body.append(
        [
            "TOTAL",
            f"{t['original']:,.0f}",
            f"{t['csod']:,.0f}",
            f"{t['csod_pct']:.0f}%",
            f"{t['asan']:,.0f}",
            f"{t['asan_pct']:.0f}%",
            f"{paper_data.TABLE5_TOTAL['csod']}/{paper_data.TABLE5_TOTAL['asan']}",
        ]
    )
    return render_table(
        ["Application", "Original KB", "CSOD KB", "CSOD %", "ASan KB", "ASan %", "paper CSOD/ASan KB"],
        body,
        title="Table V — memory usage",
    )
