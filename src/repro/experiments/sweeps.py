"""Generic parameter sweeps over CSOD's configuration.

The ablation benchmarks and the `parameter_explorer` example share one
pattern: vary one `CSODConfig` field over a grid, estimate the
detection rate per workload, and render the grid.  ``sweep_knob`` does
that in one call, using the fast abstract model by default and the full
simulation on request.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis import estimate_detection_rate
from repro.core import CSODConfig, CSODRuntime
from repro.errors import ExperimentError
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


@dataclass(frozen=True)
class SweepResult:
    """Detection rates for one knob grid over a set of workloads."""

    knob: str
    values: Sequence[object]
    apps: Sequence[str]
    rates: Dict[object, Dict[str, float]]  # value -> app -> rate
    engine: str

    def best_value(self, app: str) -> object:
        return max(self.values, key=lambda v: self.rates[v][app])

    def render(self) -> str:
        body = []
        for value in self.values:
            body.append(
                [value] + [f"{self.rates[value][app]:.1%}" for app in self.apps]
            )
        return render_table(
            [self.knob] + list(self.apps),
            body,
            title=f"Sweep of {self.knob} ({self.engine} engine)",
        )


def _config_with(base: CSODConfig, knob: str, value: object) -> CSODConfig:
    if knob not in {f.name for f in dataclasses.fields(CSODConfig)}:
        raise ExperimentError(f"no such CSODConfig knob: {knob!r}")
    return dataclasses.replace(base, **{knob: value})


def _full_sim_rate(app_name: str, config: CSODConfig, runs: int) -> float:
    app = app_for(app_name)
    hits = 0
    for seed in range(runs):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, config, seed=seed)
        app.run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    return hits / runs


def sweep_knob(
    knob: str,
    values: Sequence[object],
    apps: Sequence[str],
    base: Optional[CSODConfig] = None,
    runs: int = 150,
    engine: str = "abstract",
) -> SweepResult:
    """Rate grid for one knob.

    ``engine="abstract"`` uses :mod:`repro.analysis` (fast, statistically
    faithful); ``engine="full"`` runs the complete simulation.
    """
    if engine not in ("abstract", "full"):
        raise ExperimentError(f"unknown sweep engine {engine!r}")
    base = base or CSODConfig(replacement_policy="random")
    rates: Dict[object, Dict[str, float]] = {}
    for value in values:
        config = _config_with(base, knob, value)
        per_app: Dict[str, float] = {}
        for app_name in apps:
            if engine == "abstract":
                per_app[app_name] = estimate_detection_rate(
                    app_for(app_name).spec, config, runs=runs
                )
            else:
                per_app[app_name] = _full_sim_rate(app_name, config, runs)
        rates[value] = per_app
    return SweepResult(
        knob=knob, values=list(values), apps=list(apps), rates=rates, engine=engine
    )
