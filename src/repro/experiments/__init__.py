"""Experiment drivers — one per table/figure of the paper.

Every driver returns plain data (lists of row dataclasses) and offers a
``render()`` that prints the same rows the paper reports, side by side
with the published numbers from :mod:`repro.experiments.paper_data`.

| Paper artifact | Driver |
|---|---|
| Table I (applications)            | :func:`effectiveness.table1_rows` |
| Table II (detections /1000 runs)  | :func:`effectiveness.run_table2` |
| Table III (bug characteristics)   | :func:`characteristics.run_table3` |
| Table IV (perf characteristics)   | :func:`characteristics.run_table4` |
| Table V (memory usage)            | :func:`memory_usage.run_table5` |
| Fig. 6 (bug report)               | :func:`effectiveness.figure6_report` |
| Fig. 7 (overhead)                 | :func:`performance.run_figure7` |
| §V-A2 (evidence, 2nd run)         | :func:`evidence.run_evidence_experiment` |
"""

from repro.experiments import (
    characteristics,
    effectiveness,
    evidence,
    memory_usage,
    paper_data,
    performance,
    tables,
)

__all__ = [
    "characteristics",
    "effectiveness",
    "evidence",
    "memory_usage",
    "paper_data",
    "performance",
    "tables",
]
