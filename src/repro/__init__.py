"""repro — a full reproduction of *CSOD: Context-Sensitive Overflow
Detection* (CGO 2019) on a simulated machine substrate.

Layering (bottom to top):

* :mod:`repro.machine` — simulated address space, debug registers,
  perf_event watchpoints, signals, threads, virtual time;
* :mod:`repro.heap` — the allocator and the LD_PRELOAD-style
  interposition seam;
* :mod:`repro.callstack` — explicit call stacks, context keys,
  backtraces, symbolization;
* :mod:`repro.core` — the CSOD runtime itself (the paper's
  contribution);
* :mod:`repro.asan` — the AddressSanitizer baseline;
* :mod:`repro.workloads` — the paper's buggy and performance
  applications, rebuilt synthetically to the published characteristics;
* :mod:`repro.perfmodel` — the overhead and memory models behind
  Fig. 7 and Table V;
* :mod:`repro.experiments` — one driver per table/figure.

Quickstart::

    from repro.workloads.base import SimProcess
    from repro.core import CSODRuntime, CSODConfig

    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    # ... run a workload against process ...
    csod.shutdown()
    for report in csod.reports:
        print(report.render(process.symbols))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
