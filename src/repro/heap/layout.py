"""The evidence-based object layout of Fig. 5.

When CSOD's canary mechanism is enabled, every user object is wrapped as::

    | RealObjectPtr | ObjectSize | CallingContextPtr | Identifier | object ... | Canary |
      8 bytes         8 bytes      8 bytes             8 bytes      size         8 bytes

* ``RealObjectPtr`` — the address the underlying allocator returned, kept
  so ``memalign`` objects can be freed correctly;
* ``ObjectSize`` — locates the canary at deallocation time;
* ``CallingContextPtr`` — lets the checker report the allocation context
  when a corrupted canary is found;
* ``Identifier`` — a magic word marking a CSOD-managed header.

The paper's Table V attributes CSOD's memory overhead to exactly this
32-byte header plus the 8-byte canary; the memory model reuses these
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.address_space import AddressSpace

CSOD_HEADER_SIZE = 32
CANARY_SIZE = 8
HEADER_IDENTIFIER = 0xC50D_C50D_C50D_C50D  # "CSOD" magic

_REAL_PTR_OFFSET = 0
_SIZE_OFFSET = 8
_CONTEXT_PTR_OFFSET = 16
_IDENTIFIER_OFFSET = 24

_WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class ObjectHeader:
    """Decoded header fields for one CSOD-managed object."""

    real_object_ptr: int
    object_size: int
    context_ptr: int
    identifier: int

    @property
    def is_valid(self) -> bool:
        return self.identifier == HEADER_IDENTIFIER


def header_address(object_address: int) -> int:
    """Address of the header that precedes ``object_address``."""
    return object_address - CSOD_HEADER_SIZE


def canary_address(object_address: int, object_size: int) -> int:
    """Address of the canary word just past the user object."""
    return object_address + object_size


def write_header(
    memory: AddressSpace,
    object_address: int,
    real_object_ptr: int,
    object_size: int,
    context_ptr: int,
) -> None:
    """Serialize a header into the 32 bytes before the object.

    All four words are emitted in one contiguous store: the header is one
    cache line on the modelled hardware, and one word-granular write pays
    one mapping check instead of four.
    """
    mask = _WORD_MASK
    memory.write_words(
        object_address - CSOD_HEADER_SIZE,
        (
            real_object_ptr & mask,
            object_size & mask,
            context_ptr & mask,
            HEADER_IDENTIFIER,
        ),
    )


def write_object_size(
    memory: AddressSpace, object_address: int, object_size: int
) -> None:
    """Rewrite only the ObjectSize word (realloc's in-place resize).

    The other three words — RealObjectPtr, CallingContextPtr, and the
    Identifier — survive a resize unchanged, so a shrink pays one store
    instead of re-serializing the whole header.
    """
    memory.write_word(
        object_address - CSOD_HEADER_SIZE + _SIZE_OFFSET,
        object_size & _WORD_MASK,
    )


def read_header_words(memory: AddressSpace, object_address: int):
    """The four raw header words ``(real_ptr, size, context_ptr, ident)``.

    The hot path's churn-free alternative to :func:`read_header`: no
    :class:`ObjectHeader` instance is built per deallocation.
    """
    return memory.read_words(object_address - CSOD_HEADER_SIZE, 4)


def read_header(memory: AddressSpace, object_address: int) -> ObjectHeader:
    """Deserialize the header preceding ``object_address``."""
    words = memory.read_words(object_address - CSOD_HEADER_SIZE, 4)
    return ObjectHeader(
        real_object_ptr=words[0],
        object_size=words[1],
        context_ptr=words[2],
        identifier=words[3],
    )


def write_canary(memory: AddressSpace, object_address: int, object_size: int, value: int) -> None:
    memory.write_word(canary_address(object_address, object_size), value)


def read_canary(memory: AddressSpace, object_address: int, object_size: int) -> int:
    return memory.read_word(canary_address(object_address, object_size))
