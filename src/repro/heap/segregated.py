"""A segregated size-class allocator.

Production allocators (tcmalloc, jemalloc, glibc's tcache) serve small
objects from per-size-class runs rather than a single first-fit list.
The reproduction ships one because it changes the *adjacency* a
continuous overflow lands in — with segregation, the byte past an
object is usually another object of the same class, never a smaller
header — and because it demonstrates a claim the paper makes against
Sampler: CSOD "requires no custom memory allocator"; it interposes on
whatever the process already uses.  The test suite runs the detection
paths against both allocators.

Design: size classes up to 4 KiB, each carving 16 KiB chunks from the
arena on demand, bump allocation within a chunk, and a per-class LIFO
free list for reuse.  Larger requests fall back to whole chunks of the
exact rounded size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DoubleFreeError, InvalidFreeError, OutOfMemoryError
from repro.heap.allocator import HeapStats
from repro.heap.size_classes import MIN_ALIGNMENT, align_up, round_up_size

SIZE_CLASSES = (
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096
)
CHUNK_SIZE = 16 * 1024


def size_class_for(size: int) -> Optional[int]:
    """The smallest class that fits ``size``, or None for large objects."""
    rounded = round_up_size(size)
    for cls in SIZE_CLASSES:
        if rounded <= cls:
            return cls
    return None


class SegregatedAllocator:
    """Size-class allocator with the same surface as FreeListAllocator."""

    def __init__(self, arena_start: int, arena_size: int):
        if arena_size <= 0:
            raise ValueError(f"arena size must be positive, got {arena_size}")
        if arena_start % MIN_ALIGNMENT:
            raise ValueError(
                f"arena start {arena_start:#x} must be {MIN_ALIGNMENT}-byte aligned"
            )
        self.arena_start = arena_start
        self.arena_size = arena_size
        self._wilderness = arena_start  # bump cursor for new chunks
        self._free_lists: Dict[int, List[int]] = {cls: [] for cls in SIZE_CLASSES}
        # Current bump state per class: (cursor, chunk end).
        self._bump: Dict[int, Tuple[int, int]] = {}
        self._live: Dict[int, int] = {}  # address -> block size
        self._block_class: Dict[int, int] = {}  # address -> class (or big size)
        self._freed_once: set = set()
        self.stats = HeapStats()
        self.chunks_carved = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        cls = size_class_for(size)
        if cls is None:
            return self._alloc_large(round_up_size(size))
        free_list = self._free_lists[cls]
        if free_list:
            address = free_list.pop()
        else:
            address = self._bump_alloc(cls)
        self._record_alloc(address, cls, cls)
        return address

    def memalign(self, alignment: int, size: int) -> int:
        """Aligned allocation via a dedicated padded large block."""
        if alignment <= MIN_ALIGNMENT:
            return self.malloc(size)
        block = round_up_size(size)
        raw = self._carve(block + alignment)
        address = align_up(raw, alignment)
        self._record_alloc(address, block, block)
        return address

    def _alloc_large(self, block: int) -> int:
        address = self._carve(block)
        self._record_alloc(address, block, block)
        return address

    def _bump_alloc(self, cls: int) -> int:
        cursor, end = self._bump.get(cls, (0, 0))
        if cursor + cls > end:
            cursor = self._carve(CHUNK_SIZE)
            end = cursor + CHUNK_SIZE
            self.chunks_carved += 1
        self._bump[cls] = (cursor + cls, end)
        return cursor

    def _carve(self, size: int) -> int:
        address = self._wilderness
        if address + size > self.arena_start + self.arena_size:
            raise OutOfMemoryError(size)
        self._wilderness += size
        return address

    def _record_alloc(self, address: int, size: int, cls: int) -> None:
        self._live[address] = size
        self._block_class[address] = cls
        self._freed_once.discard(address)
        self.stats.on_alloc(size)

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------
    def free(self, address: int) -> int:
        size = self._live.pop(address, None)
        if size is None:
            if address in self._freed_once:
                raise DoubleFreeError(address)
            raise InvalidFreeError(address)
        self._freed_once.add(address)
        cls = self._block_class.pop(address)
        if cls in self._free_lists:
            self._free_lists[cls].append(address)
        # Large/aligned blocks are not recycled (wilderness-only), as in
        # simple chunk allocators; fine for simulation footprints.
        self.stats.on_free(size)
        return size

    # ------------------------------------------------------------------
    # Introspection (FreeListAllocator-compatible surface)
    # ------------------------------------------------------------------
    def usable_size(self, address: int) -> int:
        size = self._live.get(address)
        if size is None:
            raise InvalidFreeError(address, reason="not a live allocation")
        return size

    def is_live(self, address: int) -> bool:
        return address in self._live

    def live_blocks(self) -> Dict[int, int]:
        return dict(self._live)

    def check_invariants(self) -> None:
        """Live blocks never overlap; free-list entries are dead."""
        spans = sorted((a, a + s) for a, s in self._live.items())
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlap [{s1:#x},{e1:#x}) and [{s2:#x},{e2:#x})"
        for cls, free_list in self._free_lists.items():
            for address in free_list:
                assert address not in self._live
        assert self._wilderness <= self.arena_start + self.arena_size

    def __repr__(self) -> str:
        return (
            f"SegregatedAllocator(live_blocks={self.stats.live_blocks}, "
            f"chunks={self.chunks_carved})"
        )
