"""Size rounding and alignment rules.

The allocator hands out 16-byte-aligned blocks rounded up to 16-byte
multiples, matching glibc's malloc granularity on x86-64.  Rounding
matters for the reproduction because it determines where the *boundary
word* of an object lies: CSOD watches the first word past the requested
size, which padding from rounding may place inside the same block.
"""

from __future__ import annotations

MIN_ALIGNMENT = 16
MIN_BLOCK_SIZE = 16
WORD_SIZE = 8


def round_up_size(size: int) -> int:
    """Round a request up to the allocator's block granularity."""
    if size < 0:
        raise ValueError(f"allocation size cannot be negative: {size}")
    if size == 0:
        # malloc(0) returns a unique minimal block, as glibc does.
        return MIN_BLOCK_SIZE
    return (size + MIN_ALIGNMENT - 1) & ~(MIN_ALIGNMENT - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of 2)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (address + alignment - 1) & ~(alignment - 1)


def is_aligned(address: int, alignment: int = MIN_ALIGNMENT) -> bool:
    return address % alignment == 0
