"""Heap-layout dumps — a debugging lens over the simulated heap.

``dump_heap`` renders the live blocks around an address with CSOD's
envelope decoded: header validity, object size, canary state, and
whether a hardware watchpoint is parked on the boundary word.  The
output is what you want next to a bug report when deciding whether an
overflow was continuous, how far it ran, and what it clobbered.
"""

from __future__ import annotations

from typing import List, Optional

from repro.heap import layout


def _canary_state(process, csod, object_address: int, size: int) -> str:
    value = layout.read_canary(process.machine.memory, object_address, size)
    if csod is not None and csod.canary is not None:
        return "OK" if value == csod.canary.canary_value else "CORRUPT"
    return f"{value:#x}"


def _watch_annotation(csod, object_address: int) -> str:
    if csod is None:
        return ""
    watched = csod.wmu.find_by_object_address(object_address)
    if watched is None:
        return ""
    return f"  [WATCHED slot {watched.slot_index} @ {watched.watch_address:#x}]"


def dump_object(process, csod, object_address: int) -> str:
    """One CSOD-managed object, fully decoded."""
    memory = process.machine.memory
    header = layout.read_header(memory, object_address)
    lines: List[str] = [f"object @ {object_address:#x}"]
    if header.is_valid:
        lines.append(
            f"  header: real={header.real_object_ptr:#x} "
            f"size={header.object_size} ctx={header.context_ptr:#x}"
        )
        state = _canary_state(process, csod, object_address, header.object_size)
        lines.append(
            f"  canary @ {object_address + header.object_size:#x}: {state}"
        )
    else:
        lines.append("  header: INVALID (clobbered, or not a CSOD object)")
    annotation = _watch_annotation(csod, object_address)
    if annotation:
        lines.append(annotation.strip())
    preview = memory.read_bytes(object_address, 16)
    lines.append(f"  bytes: {preview.hex(' ')} ...")
    return "\n".join(lines)


def dump_heap(
    process,
    csod=None,
    around: Optional[int] = None,
    max_blocks: int = 24,
) -> str:
    """The live raw blocks (address order), annotated.

    ``around`` centres the window on one address; otherwise the first
    ``max_blocks`` blocks are shown.
    """
    blocks = sorted(process.allocator.live_blocks().items())
    if around is not None:
        index = next(
            (i for i, (address, size) in enumerate(blocks)
             if address <= around < address + size),
            0,
        )
        lo = max(0, index - max_blocks // 2)
        blocks = blocks[lo : lo + max_blocks]
    else:
        blocks = blocks[:max_blocks]
    lines = [f"{len(process.allocator.live_blocks())} live raw blocks"]
    memory = process.machine.memory
    for address, size in blocks:
        entry = f"  [{address:#x} +{size}]"
        # A CSOD envelope? The user object would start 32 bytes in.
        candidate = address + layout.CSOD_HEADER_SIZE
        try:
            header = layout.read_header(memory, candidate)
        except Exception:
            header = None
        if header is not None and header.is_valid and header.real_object_ptr == address:
            state = _canary_state(process, csod, candidate, header.object_size)
            entry += (
                f" csod-object @ {candidate:#x} size={header.object_size} "
                f"canary={state}"
            )
            entry += _watch_annotation(csod, candidate)
        lines.append(entry)
    return "\n".join(lines)
