"""Heap substrate: allocator, object layout, and interposition.

The allocator carves objects out of the machine's mapped heap arena with
real adjacency — the byte just past an object is a live, addressable
location — which is what makes boundary watchpoints and canaries
meaningful.  :mod:`repro.heap.interpose` provides the ``LD_PRELOAD``
analogue: a process-wide slot where a runtime library (CSOD, ASan)
replaces ``malloc``/``free`` without the application changing.
"""

from repro.heap.allocator import FreeListAllocator, HeapStats
from repro.heap.interpose import LibraryInterposer, RawHeap
from repro.heap.layout import (
    CANARY_SIZE,
    CSOD_HEADER_SIZE,
    HEADER_IDENTIFIER,
    ObjectHeader,
)
from repro.heap.size_classes import MIN_ALIGNMENT, round_up_size

__all__ = [
    "FreeListAllocator",
    "HeapStats",
    "LibraryInterposer",
    "RawHeap",
    "CANARY_SIZE",
    "CSOD_HEADER_SIZE",
    "HEADER_IDENTIFIER",
    "ObjectHeader",
    "MIN_ALIGNMENT",
    "round_up_size",
]
