"""A first-fit free-list allocator over the simulated arena.

This is the "default Linux library" of the paper's evaluation — the
baseline allocator that applications use directly, and that CSOD/ASan
wrap.  It provides:

* 16-byte-aligned first-fit allocation with block splitting,
* address-ordered free list with coalescing of adjacent free blocks,
* ``memalign`` via internal alignment padding,
* double-free / invalid-free diagnosis, and
* footprint statistics (live bytes, peak live bytes, peak block count)
  that feed the Table V memory model.

Objects are packed contiguously, so the word past one object is
frequently the header or body of the next — exactly the adjacency that
makes heap overflows silently destructive and boundary watchpoints
informative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DoubleFreeError, InvalidFreeError, OutOfMemoryError
from repro.heap.size_classes import MIN_ALIGNMENT, align_up, round_up_size


@dataclass
class HeapStats:
    """Footprint and traffic counters."""

    total_allocations: int = 0
    total_frees: int = 0
    live_bytes: int = 0
    live_blocks: int = 0
    peak_live_bytes: int = 0
    peak_live_blocks: int = 0

    def on_alloc(self, size: int) -> None:
        self.total_allocations += 1
        self.live_bytes += size
        self.live_blocks += 1
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        self.peak_live_blocks = max(self.peak_live_blocks, self.live_blocks)

    def on_free(self, size: int) -> None:
        self.total_frees += 1
        self.live_bytes -= size
        self.live_blocks -= 1


class FreeListAllocator:
    """First-fit allocator with splitting and coalescing."""

    def __init__(self, arena_start: int, arena_size: int):
        if arena_size <= 0:
            raise ValueError(f"arena size must be positive, got {arena_size}")
        if arena_start % MIN_ALIGNMENT:
            raise ValueError(
                f"arena start {arena_start:#x} must be {MIN_ALIGNMENT}-byte aligned"
            )
        self.arena_start = arena_start
        self.arena_size = arena_size
        # Address-ordered list of (start, size) free extents.
        self._free: List[Tuple[int, int]] = [(arena_start, arena_size)]
        # address -> block size for live blocks.
        self._live: Dict[int, int] = {}
        self._freed_once: set = set()
        self.stats = HeapStats()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the block address.

        The body inlines the take/record helpers: this is the innermost
        call of every interposed allocation, and the helper hops cost
        more than the list surgery they wrap.
        """
        # Inline rounding for the common case; round_up_size still
        # handles zero (-> minimum block) and rejects negatives.
        block_size = (size + 15) & -16 if size > 0 else round_up_size(size)
        free = self._free
        for index, (start, extent) in enumerate(free):
            if extent >= block_size:
                remainder = extent - block_size
                if remainder:
                    free[index] = (start + block_size, remainder)
                else:
                    del free[index]
                self._live[start] = block_size
                self._freed_once.discard(start)
                stats = self.stats
                stats.total_allocations += 1
                live_bytes = stats.live_bytes + block_size
                stats.live_bytes = live_bytes
                live_blocks = stats.live_blocks + 1
                stats.live_blocks = live_blocks
                if live_bytes > stats.peak_live_bytes:
                    stats.peak_live_bytes = live_bytes
                if live_blocks > stats.peak_live_blocks:
                    stats.peak_live_blocks = live_blocks
                return start
        raise OutOfMemoryError(size)

    def memalign(self, alignment: int, size: int) -> int:
        """Allocate ``size`` bytes at an ``alignment``-aligned address."""
        block_size = round_up_size(size)
        for index, (start, extent) in enumerate(self._free):
            aligned = align_up(start, alignment)
            padding = aligned - start
            if extent >= padding + block_size:
                # Return the leading padding to the free list, then carve.
                del self._free[index]
                if padding:
                    self._free.insert(index, (start, padding))
                    index += 1
                remainder = extent - padding - block_size
                if remainder:
                    self._free.insert(index, (aligned + block_size, remainder))
                self._record_alloc(aligned, block_size)
                return aligned
        raise OutOfMemoryError(size)

    def _take(self, index: int, start: int, block_size: int, extent: int) -> None:
        remainder = extent - block_size
        if remainder:
            self._free[index] = (start + block_size, remainder)
        else:
            del self._free[index]

    def _record_alloc(self, address: int, block_size: int) -> None:
        self._live[address] = block_size
        self._freed_once.discard(address)
        self.stats.on_alloc(block_size)

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------
    def free(self, address: int) -> int:
        """Release a block; returns its size.  Diagnoses bad frees.

        Like :meth:`malloc`, the body inlines the free-list insertion and
        both-neighbour coalescing (binary search + at most two merges).
        """
        size = self._live.pop(address, None)
        if size is None:
            if address in self._freed_once:
                raise DoubleFreeError(address)
            raise InvalidFreeError(address)
        self._freed_once.add(address)
        stats = self.stats
        stats.total_frees += 1
        stats.live_bytes -= size
        stats.live_blocks -= 1
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < address:
                lo = mid + 1
            else:
                hi = mid
        # Merge with the successor first, then the predecessor.
        end = address + size
        if lo < len(free) and end == free[lo][0]:
            nstart, nsize = free[lo]
            free[lo] = (address, size + nsize)
        else:
            free.insert(lo, (address, size))
        if lo > 0:
            pstart, psize = free[lo - 1]
            if pstart + psize == address:
                start, merged = free[lo]
                free[lo - 1] = (pstart, psize + merged)
                del free[lo]
        return size

    def _insert_free(self, address: int, size: int) -> None:
        # Keep the list address-ordered and coalesce both neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < address:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (address, size))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        # Merge with the successor first, then the predecessor.
        if index + 1 < len(self._free):
            start, size = self._free[index]
            nstart, nsize = self._free[index + 1]
            if start + size == nstart:
                self._free[index] = (start, size + nsize)
                del self._free[index + 1]
        if index > 0:
            pstart, psize = self._free[index - 1]
            start, size = self._free[index]
            if pstart + psize == start:
                self._free[index - 1] = (pstart, psize + size)
                del self._free[index]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def usable_size(self, address: int) -> int:
        """Block size behind a live allocation (``malloc_usable_size``)."""
        size = self._live.get(address)
        if size is None:
            raise InvalidFreeError(address, reason="not a live allocation")
        return size

    def is_live(self, address: int) -> bool:
        return address in self._live

    def live_blocks(self) -> Dict[int, int]:
        """Snapshot of live (address -> size) blocks."""
        return dict(self._live)

    def free_extents(self) -> List[Tuple[int, int]]:
        return list(self._free)

    def check_invariants(self) -> None:
        """Assert the structural invariants (used by property tests).

        * free extents are address-ordered, non-overlapping, and never
          adjacent (adjacent extents must have been coalesced);
        * live blocks never overlap each other or any free extent;
        * live + free bytes never exceed the arena.
        """
        prev_end = None
        for start, size in self._free:
            assert size > 0, "empty free extent"
            if prev_end is not None:
                assert start > prev_end, "free list out of order or overlapping"
                assert start != prev_end, "uncoalesced adjacent extents"
            prev_end = start + size
            assert self.arena_start <= start
            assert prev_end <= self.arena_start + self.arena_size
        spans = sorted(
            [(a, a + s, "live") for a, s in self._live.items()]
            + [(a, a + s, "free") for a, s in self._free]
        )
        for (s1, e1, _), (s2, e2, _) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlapping spans [{s1:#x},{e1:#x}) and [{s2:#x},{e2:#x})"

    def __repr__(self) -> str:
        return (
            f"FreeListAllocator(live_blocks={self.stats.live_blocks}, "
            f"live_bytes={self.stats.live_bytes}, "
            f"free_extents={len(self._free)})"
        )
