"""Allocation-routine interposition — the ``LD_PRELOAD`` analogue.

CSOD is "a drop-in library that can be linked to applications ... or be
preloaded by setting the ``LD_PRELOAD`` environment variable" (§II-B).
In the simulation, every application performs heap calls through a
process-wide :class:`LibraryInterposer`.  By default the calls fall
through to the :class:`RawHeap` (the "default Linux" allocator).
Preloading a runtime library (CSOD, ASan) swaps the implementation
without the application changing a line — the same contract the paper's
deployment story relies on.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.machine.machine import Machine
from repro.machine.syscall_cost import EVENT_FREE, EVENT_MALLOC
from repro.machine.threads import SimThread
from repro.heap.allocator import FreeListAllocator

# Calibrated cost of one glibc malloc/free call on the testbed.
MALLOC_COST_NS = 45
FREE_COST_NS = 35


class HeapLibrary(Protocol):
    """The allocation interface every heap implementation exposes."""

    def malloc(self, thread: SimThread, size: int) -> int:  # pragma: no cover
        ...

    def free(self, thread: SimThread, address: int) -> None:  # pragma: no cover
        ...

    def memalign(
        self, thread: SimThread, alignment: int, size: int
    ) -> int:  # pragma: no cover
        ...

    def usable_size(self, address: int) -> int:  # pragma: no cover
        ...


class RawHeap:
    """The unwrapped allocator: glibc's malloc in the paper's baseline."""

    def __init__(self, machine: Machine, allocator: FreeListAllocator):
        self._machine = machine
        self.allocator = allocator

    def malloc(self, thread: SimThread, size: int) -> int:
        self._machine.ledger.record(EVENT_MALLOC, nanos_each=MALLOC_COST_NS)
        return self.allocator.malloc(size)

    def free(self, thread: SimThread, address: int) -> None:
        self._machine.ledger.record(EVENT_FREE, nanos_each=FREE_COST_NS)
        self.allocator.free(address)

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        self._machine.ledger.record(EVENT_MALLOC, nanos_each=MALLOC_COST_NS)
        return self.allocator.memalign(alignment, size)

    def usable_size(self, address: int) -> int:
        return self.allocator.usable_size(address)


class LibraryInterposer:
    """Routes application heap calls to the preloaded library, if any."""

    def __init__(self, raw: RawHeap):
        self._raw = raw
        self._library: Optional[HeapLibrary] = None
        # The resolved dispatch target.  ``malloc``/``free`` are the two
        # hottest calls in the simulator; resolving the preload decision
        # once per (un)load instead of per call removes a property hop
        # and a None test from every interposed operation.
        self._active: HeapLibrary = raw
        self._bind(raw)

    def _bind(self, target: HeapLibrary) -> None:
        # Bind the two hottest entry points as *instance* attributes so
        # an application call lands directly on the active library's
        # bound method, skipping the dispatch-wrapper frame entirely.
        # ``free`` keeps its free(NULL) no-op through a tiny closure —
        # unless the library's own free already guards NULL (the batched
        # driver marks itself with ``_handles_null``), in which case it
        # too binds directly.
        self._active = target
        self.malloc = target.malloc
        target_free = target.free
        if getattr(target_free, "_handles_null", False):
            self.free = target_free
            return

        def free(thread: SimThread, address: int) -> None:
            if address == 0:
                return  # free(NULL) is a no-op
            target_free(thread, address)

        self.free = free

    def preload(self, library: HeapLibrary) -> None:
        """Install a runtime library (the LD_PRELOAD moment)."""
        self._library = library
        self._bind(library)

    def unload(self) -> None:
        self._library = None
        self._bind(self._raw)

    @property
    def active_library(self) -> HeapLibrary:
        return self._active

    @property
    def raw(self) -> RawHeap:
        return self._raw

    # ------------------------------------------------------------------
    # The application-facing malloc/free surface
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        return self._active.malloc(thread, size)

    def calloc(self, thread: SimThread, count: int, size: int) -> int:
        """calloc = malloc + zero fill (the fill happens in heap memory)."""
        total = count * size
        address = self._active.malloc(thread, total)
        if total:
            self._raw._machine.memory.write_bytes(address, bytes(total))
        return address

    def realloc(self, thread: SimThread, address: int, new_size: int) -> int:
        """realloc: the library's own when it defines one, else naive.

        A preloaded library that implements ``realloc`` (CSOD's monitor
        resizes evidence-wrapped objects in place on a shrink) gets the
        call verbatim; every other library falls back to
        allocate-copy-free through its interposed malloc/free (contents
        preserved).
        """
        library_realloc = getattr(self._active, "realloc", None)
        if library_realloc is not None:
            return library_realloc(thread, address, new_size)
        if address == 0:
            return self._active.malloc(thread, new_size)
        memory = self._raw._machine.memory
        old_size = self._active.usable_size(address)
        new_address = self._active.malloc(thread, new_size)
        payload = memory.read_bytes(address, min(old_size, new_size))
        memory.write_bytes(new_address, payload)
        self._active.free(thread, address)
        return new_address

    def free(self, thread: SimThread, address: int) -> None:
        if address == 0:
            return  # free(NULL) is a no-op
        self._active.free(thread, address)

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        return self._active.memalign(thread, alignment, size)
