"""Exception hierarchy shared across the repro package.

Every error raised by the simulated machine, the heap substrate, or the
CSOD runtime derives from :class:`ReproError` so that callers can catch
simulation-level failures without masking ordinary Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(ReproError):
    """Base class for simulated-machine errors."""


class SegmentationFault(MachineError):
    """An access touched an address that is not mapped.

    Mirrors a SIGSEGV: the simulated process is expected to die unless a
    handler was registered for ``SIGSEGV``.
    """

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        self.address = address
        self.size = size
        self.kind = kind
        super().__init__(
            f"segmentation fault: {kind} of {size} byte(s) at {address:#x}"
        )


class DebugRegisterError(MachineError):
    """Raised when the 4-slot debug-register file is misused."""


class PerfEventError(MachineError):
    """Raised for invalid perf_event fd operations (bad fd, double close)."""


class InvalidSignalError(MachineError):
    """Raised when a signal number outside the supported set is used."""


class ThreadError(MachineError):
    """Raised for invalid simulated-thread operations."""


class HeapError(ReproError):
    """Base class for allocator errors."""


class OutOfMemoryError(HeapError):
    """The simulated arena cannot satisfy the request."""

    def __init__(self, requested: int):
        self.requested = requested
        super().__init__(f"simulated heap exhausted: requested {requested} bytes")


class InvalidFreeError(HeapError):
    """free() was called with a pointer the allocator does not own."""

    def __init__(self, address: int, reason: str = "not an allocated block"):
        self.address = address
        self.reason = reason
        super().__init__(f"invalid free of {address:#x}: {reason}")


class DoubleFreeError(InvalidFreeError):
    """free() was called twice on the same block."""

    def __init__(self, address: int):
        super().__init__(address, reason="double free")


class CSODError(ReproError):
    """Base class for errors in the CSOD runtime itself."""


class WorkloadError(ReproError):
    """A workload was configured or driven incorrectly."""


class CampaignCancelled(ReproError):
    """A fleet campaign was stopped before all executions ran.

    Raised by :class:`repro.fleet.pool.FleetPool` when a stop request
    (client cancellation, service shutdown, Ctrl-C) interrupts a wave.
    The pool guarantees its worker processes are terminated before this
    propagates, so catching it never leaks an executor.
    """


class ServiceError(ReproError):
    """A campaign service request was malformed or cannot be served."""


class ExperimentError(ReproError):
    """An experiment driver was configured incorrectly."""
