"""Shadow memory with ASan's 1/8 encoding.

Every 8 application bytes map to one shadow byte.  A shadow byte of 0
means fully addressable; 1..7 means only that many leading bytes are
addressable; negative tags mark whole-granule poison classes (redzone,
freed).  The encoding matters for the reproduction because it is what
gives ASan detection *within* redzones regardless of stride — and
nothing beyond them (§VI).
"""

from __future__ import annotations

from typing import Dict, Optional

GRANULE = 8

TAG_ADDRESSABLE = 0x00
TAG_REDZONE = 0xFA  # heap left/right redzone
TAG_FREED = 0xFD  # heap-use-after-free poison

_POISON_TAGS = (TAG_REDZONE, TAG_FREED)


class ShadowMemory:
    """Sparse shadow: one byte per 8-byte application granule."""

    def __init__(self):
        self._shadow: Dict[int, int] = {}

    @staticmethod
    def granule(address: int) -> int:
        return address // GRANULE

    # ------------------------------------------------------------------
    # Poisoning
    # ------------------------------------------------------------------
    def poison(self, address: int, size: int, tag: int) -> None:
        """Poison ``[address, address + size)`` with ``tag``.

        Callers poison granule-aligned ranges (redzones are 16-byte
        multiples); a trailing partial granule is encoded with the count
        of addressable leading bytes, as real ASan does.
        """
        if size <= 0:
            return
        if tag not in _POISON_TAGS:
            raise ValueError(f"not a poison tag: {tag:#x}")
        first = self.granule(address)
        last = self.granule(address + size - 1)
        for g in range(first, last + 1):
            self._shadow[g] = tag

    def unpoison(self, address: int, size: int) -> None:
        """Make ``[address, address + size)`` addressable.

        A trailing partial granule that was previously poisoned gets the
        partial-addressability count, so an access past
        ``address + size`` within the same granule still faults; a
        granule that was already clean stays fully clean (unpoisoning
        must never *reduce* addressability).
        """
        if size <= 0:
            return
        first = self.granule(address)
        end = address + size
        last_full = self.granule(end) if end % GRANULE == 0 else self.granule(end - 1)
        for g in range(first, last_full):
            self._shadow.pop(g, None)
        if end % GRANULE:
            last = self.granule(end - 1)
            if last in self._shadow:
                self._shadow[last] = end % GRANULE

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check(self, address: int, size: int) -> Optional[int]:
        """Tag hit by an access of ``size`` bytes at ``address``, if any.

        Returns the poison tag, or None when the access is clean.
        Partial-granule encodings fault when the access runs past the
        addressable prefix.
        """
        if size <= 0:
            return None
        first = self.granule(address)
        last = self.granule(address + size - 1)
        for g in range(first, last + 1):
            value = self._shadow.get(g, TAG_ADDRESSABLE)
            if value == TAG_ADDRESSABLE:
                continue
            if value in _POISON_TAGS:
                return value
            # Partial granule: `value` leading bytes are addressable.
            access_end_in_granule = address + size - g * GRANULE
            if g == last and access_end_in_granule <= value:
                continue
            if g < last:
                return TAG_REDZONE
            return TAG_REDZONE
        return None

    def poisoned_granules(self) -> int:
        return len(self._shadow)
