"""Which modules ASan's compile-time instrumentation covers.

ASan checks are inserted by the compiler, so "only detects problems
caused by instrumented components, while skipping those caused by many
non-instrumented libraries" (§I).  The paper's evaluation did not
instrument external libraries, which is why ASan missed the Libtiff,
LibHX, and Zziplib bugs — all three overflows execute inside a shared
library.

The convention used by the synthetic workloads: module names ending in
``.SO`` are prebuilt shared libraries (uninstrumented by default);
everything else is application code built with ``-fsanitize=address``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

SHARED_LIBRARY_SUFFIX = ".SO"


class InstrumentationPolicy:
    """Decides whether code in a module carries ASan checks."""

    def __init__(
        self,
        instrumented: Optional[Iterable[str]] = None,
        instrument_all: bool = False,
    ):
        self._instrument_all = instrument_all
        self._extra: Set[str] = set(instrumented or ())

    def covers(self, module: str) -> bool:
        """Whether accesses issued from ``module`` are checked."""
        if self._instrument_all:
            return True
        if module in self._extra:
            return True
        return not module.upper().endswith(SHARED_LIBRARY_SUFFIX)

    def instrument(self, module: str) -> None:
        """Explicitly add a module (rebuilt with ASan) to the policy."""
        self._extra.add(module)
