"""The ASan runtime: interposed allocator + per-access shadow checks.

``malloc`` places the object between two redzones and unpoisons exactly
the requested size; ``free`` poisons the object and parks it in a FIFO
quarantine (delaying reuse, which is what gives real ASan its
use-after-free power and its Table V memory bill).  Every CPU access
from an *instrumented* module is checked against the shadow; a poisoned
hit produces an :class:`ASanReport` — by default non-fatal here, so the
experiment drivers can tally detections across a whole run the way the
paper's scripts did.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.asan.instrumentation import InstrumentationPolicy
from repro.asan.redzones import redzone_size
from repro.asan.shadow import ShadowMemory, TAG_FREED, TAG_REDZONE
from repro.errors import ReproError
from repro.heap.interpose import RawHeap
from repro.machine.cpu import AccessKind
from repro.machine.machine import Machine
from repro.machine.syscall_cost import (
    EVENT_ASAN_CHECK,
    EVENT_ASAN_POISON,
)
from repro.machine.threads import SimThread

ASAN_CHECK_COST_NS = 2
ASAN_POISON_COST_NS = 12

# Real ASan's default quarantine is 256 MiB; the paper's tiny-footprint
# rows (Table V) imply a far smaller effective cap with minimal
# redzones, so the cap is configurable.
DEFAULT_QUARANTINE_BYTES = 256 * 1024


@dataclass(frozen=True)
class ASanReport:
    """One shadow-check failure.

    Like real ASan, the report carries the faulting access and — when
    the faulted zone belongs to a tracked allocation — that object's
    malloc stack, rendered as source locations.
    """

    kind: str  # "heap-buffer-overflow", "heap-use-after-free", "double-free"
    access_kind: str  # read / write / free
    fault_address: int
    access_size: int
    thread_id: int
    module: str
    object_address: int = 0
    object_size: int = 0
    allocation_context: Tuple[str, ...] = ()
    deallocation_context: Tuple[str, ...] = ()


class ASanRuntime:
    """Simulated AddressSanitizer over the same machine substrate."""

    def __init__(
        self,
        machine: Machine,
        interposer,
        instrumentation: Optional[InstrumentationPolicy] = None,
        minimal_redzones: bool = True,
        quarantine_bytes: int = DEFAULT_QUARANTINE_BYTES,
        halt_on_error: bool = False,
    ):
        self.machine = machine
        self._raw: RawHeap = interposer.raw
        self._interposer = interposer
        self.instrumentation = instrumentation or InstrumentationPolicy()
        self.minimal_redzones = minimal_redzones
        self.halt_on_error = halt_on_error
        self.shadow = ShadowMemory()
        self.reports: List[ASanReport] = []
        # address -> (real block, object size, left redzone)
        self._live: Dict[int, Tuple[int, int, int]] = {}
        self._alloc_contexts: Dict[int, Tuple[str, ...]] = {}
        # address -> (size, alloc stack, free stack) while quarantined;
        # a second free of one of these is a deterministic double-free.
        self._freed: Dict[int, Tuple[int, Tuple[str, ...], Tuple[str, ...]]] = {}
        self._quarantine: Deque[Tuple[int, int, int]] = deque()
        self._quarantine_bytes = 0
        self._quarantine_cap = quarantine_bytes
        self.checks_performed = 0
        machine.cpu.add_access_hook(self._check_access)
        interposer.preload(self)

    # ------------------------------------------------------------------
    # HeapLibrary surface
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        zone = redzone_size(size, self.minimal_redzones)
        real = self._raw.malloc(thread, zone + size + zone)
        address = real + zone
        self._poison(real, zone)  # left redzone
        self._poison(address + size, zone)  # right redzone
        self.shadow.unpoison(address, size)
        self._live[address] = (real, size, zone)
        self._alloc_contexts[address] = self._context_of(thread)
        return address

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        zone = redzone_size(size, self.minimal_redzones)
        pad = max(alignment, zone)
        real = self._raw.memalign(thread, alignment, pad + size + zone)
        address = real + pad
        self._poison(real, pad)
        self._poison(address + size, zone)
        self.shadow.unpoison(address, size)
        self._live[address] = (real, size, pad)
        self._alloc_contexts[address] = self._context_of(thread)
        return address

    @staticmethod
    def _context_of(thread: SimThread) -> Tuple[str, ...]:
        return tuple(str(frame) for frame in thread.call_stack)

    def free(self, thread: SimThread, address: int) -> None:
        entry = self._live.pop(address, None)
        if entry is None:
            freed = self._freed.get(address)
            if freed is not None:
                # Second free of a quarantined block: report (non-fatal,
                # like attempting_double_free in the real tool) with the
                # recorded malloc and first-free stacks.
                size, alloc_context, free_context = freed
                frame = thread.call_stack.top()
                self.reports.append(
                    ASanReport(
                        kind="double-free",
                        access_kind="free",
                        fault_address=address,
                        access_size=0,
                        thread_id=thread.tid,
                        module=frame.site.module if frame else "",
                        object_address=address,
                        object_size=size,
                        allocation_context=alloc_context,
                        deallocation_context=free_context,
                    )
                )
                return
            raise ReproError(f"ASan: free of unknown pointer {address:#x}")
        real, size, _zone = entry
        alloc_context = self._alloc_contexts.pop(address, ())
        # Poison the body and park the block in the quarantine instead of
        # returning it to the allocator.
        self.shadow.poison(address, size, TAG_FREED)
        self._freed[address] = (size, alloc_context, self._context_of(thread))
        self._quarantine.append((real, size, address))
        self._quarantine_bytes += size
        while self._quarantine_bytes > self._quarantine_cap and self._quarantine:
            old_real, old_size, old_address = self._quarantine.popleft()
            self._quarantine_bytes -= old_size
            self._freed.pop(old_address, None)
            self._raw.free(thread, old_real)

    def usable_size(self, address: int) -> int:
        entry = self._live.get(address)
        if entry is None:
            raise ReproError(f"ASan: unknown pointer {address:#x}")
        return entry[1]

    # ------------------------------------------------------------------
    # The instrumented access check
    # ------------------------------------------------------------------
    def _check_access(
        self, thread: SimThread, address: int, size: int, kind: str
    ) -> None:
        frame = thread.call_stack.top()
        module = frame.site.module if frame else ""
        if not self.instrumentation.covers(module):
            # The access was compiled without instrumentation: no check,
            # no detection — the gap CSOD does not have.
            return
        self.checks_performed += 1
        self.machine.ledger.record(EVENT_ASAN_CHECK, nanos_each=ASAN_CHECK_COST_NS)
        tag = self.shadow.check(address, size)
        if tag is None:
            return
        # Attribute the fault to the nearest tracked object (the one
        # whose redzone/body the access landed next to), if any.
        object_address = 0
        object_size = 0
        context: Tuple[str, ...] = ()
        for base, (real, length, zone) in self._live.items():
            if real <= address < base + length + zone:
                object_address, object_size = base, length
                context = self._alloc_contexts.get(base, ())
                break
        report = ASanReport(
            kind=(
                "heap-use-after-free" if tag == TAG_FREED else "heap-buffer-overflow"
            ),
            access_kind=kind,
            fault_address=address,
            access_size=size,
            thread_id=thread.tid,
            module=module,
            object_address=object_address,
            object_size=object_size,
            allocation_context=context,
        )
        self.reports.append(report)
        if self.halt_on_error:
            raise ReproError(f"ASan: {report.kind} at {address:#x}")

    # ------------------------------------------------------------------
    # Results / teardown
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        return bool(self.reports)

    def shutdown(self) -> None:
        self.machine.cpu.remove_access_hook(self._check_access)
        self._interposer.unload()

    def quarantine_footprint(self) -> int:
        return self._quarantine_bytes

    def _poison(self, address: int, size: int) -> None:
        self.machine.ledger.record(EVENT_ASAN_POISON, nanos_each=ASAN_POISON_COST_NS)
        self.shadow.poison(address, size, TAG_REDZONE)
