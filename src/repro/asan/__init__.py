"""A simulated AddressSanitizer — the paper's main baseline.

The reproduction needs ASan for three comparisons:

* **detection coverage** — ASan catches redzone hits *only from
  instrumented code*; the paper's Table II discussion notes it misses
  the Libtiff, LibHX, and Zziplib bugs, which live in uninstrumented
  shared libraries;
* **performance** (Fig. 7) — ASan checks every memory access, so its
  overhead tracks access intensity rather than allocation intensity;
* **memory** (Table V) — redzones + shadow + quarantine versus CSOD's
  40-byte per-object envelope.

The implementation follows the real design at the granularity the
experiments need: a 1/8-scale shadow encoding
(:mod:`repro.asan.shadow`), 16-byte minimal redzones
(:mod:`repro.asan.redzones`), a freed-memory quarantine, and per-module
instrumentation (:mod:`repro.asan.instrumentation`).
"""

from repro.asan.instrumentation import InstrumentationPolicy
from repro.asan.redzones import MIN_REDZONE, redzone_size
from repro.asan.runtime import ASanReport, ASanRuntime
from repro.asan.shadow import (
    ShadowMemory,
    TAG_ADDRESSABLE,
    TAG_FREED,
    TAG_REDZONE,
)

__all__ = [
    "InstrumentationPolicy",
    "MIN_REDZONE",
    "redzone_size",
    "ASanReport",
    "ASanRuntime",
    "ShadowMemory",
    "TAG_ADDRESSABLE",
    "TAG_FREED",
    "TAG_REDZONE",
]
