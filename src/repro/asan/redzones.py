"""Redzone sizing.

The paper ran ASan "with the minimal size of redzones (16 bytes)" for a
fair comparison; default ASan scales redzones with object size.  Both
policies are provided so the Fig. 7 / Table V benchmarks can show the
two ASan configurations the paper plots.
"""

from __future__ import annotations

MIN_REDZONE = 16
DEFAULT_MAX_REDZONE = 2048


def redzone_size(object_size: int, minimal: bool = True) -> int:
    """Bytes of redzone placed on each side of an object."""
    if object_size < 0:
        raise ValueError(f"object size cannot be negative: {object_size}")
    if minimal:
        return MIN_REDZONE
    # Default ASan grows redzones with allocation size (power-of-two
    # steps, capped), trading memory for out-of-bounds reach.
    size = MIN_REDZONE
    while size < object_size // 4 and size < DEFAULT_MAX_REDZONE:
        size *= 2
    return size
