"""Memcached-1.4.25 — CVE-2016-8706, a heap over-write in the SASL
authentication path (TALOS-2016-0221).

The real bug: a crafted SASL negotiation makes the server copy
attacker-controlled data past the end of a freshly allocated item — a
remote-code-execution primitive in a service that typically runs for
months.

Structure (Table III): 442 allocations over 74 contexts, with the
overflowed item allocated *last* — the canonical late-victim server
shape.  By then all four watchpoints are held by long-lived startup
objects, so the naive policy never detects (0/1000); the adaptive
policies preempt their way in at the ~16-18% per-execution band.  The
overflow is performed by a request-handling worker thread, not the
allocating thread — exercising the install-on-every-thread design of
Fig. 3.  Because it is an over-write, the canary always records
evidence, making this the paper's showcase for the second-execution
guarantee (§V-A2).
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

MEMCACHED = BuggyAppSpec(
    name="memcached",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="MEMCACHED",
    reference="CVE-2016-8706",
    total_contexts=74,
    total_allocations=442,
    before_contexts=74,
    before_allocations=442,
    victim_alloc_index=442,
    victim_context_prior_allocs=6,
    churn=0.30,
    churn_lifetime=40,
    overflow_from_worker=True,
    structural_seed=8706,
    work_ns_per_alloc=100_000_000,
)
