"""Structural specs for the nine Table I applications.

Each application lives in its own ``app_*`` module with the bug's
provenance and the reasoning behind the unpublished structural knobs
(victim position, prior allocations of the buggy context, churn, work
time); this module aggregates them.

The counts in each spec come straight from Table III of the paper.
Fields the paper does not publish were tuned so the measured Table II
behaviour lands in the published bands:

* the naive policy must detect {Gzip, Libdwarf, LibHX, Libtiff,
  Polymorph} always, and {Heartbleed, Memcached, MySQL, Zziplib} never;
* random/near-FIFO rates must fall in the 10%-100% band with roughly
  the published ordering.

Known deviations are documented per-app and in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.workloads.buggy.app_gzip import GZIP
from repro.workloads.buggy.app_heartbleed import HEARTBLEED
from repro.workloads.buggy.app_libdwarf import LIBDWARF
from repro.workloads.buggy.app_libhx import LIBHX
from repro.workloads.buggy.app_libtiff import LIBTIFF
from repro.workloads.buggy.app_memcached import MEMCACHED
from repro.workloads.buggy.app_mysql import MYSQL
from repro.workloads.buggy.app_polymorph import POLYMORPH
from repro.workloads.buggy.app_zziplib import ZZIPLIB

ALL_SPECS = (
    GZIP,
    HEARTBLEED,
    LIBDWARF,
    LIBHX,
    LIBTIFF,
    MEMCACHED,
    MYSQL,
    POLYMORPH,
    ZZIPLIB,
)

__all__ = [
    "ALL_SPECS",
    "GZIP",
    "HEARTBLEED",
    "LIBDWARF",
    "LIBHX",
    "LIBTIFF",
    "MEMCACHED",
    "MYSQL",
    "POLYMORPH",
    "ZZIPLIB",
]
