"""MySQL-5.5.19 — CVE-2012-5612, a heap over-write ("zeroday" PoC on
exploit-db 23076).

The real bug: a sequence of client commands overruns a heap buffer in
the server's protocol handling.  At 1.3M lines of code and hundreds of
distinct allocation sites, MySQL is the paper's scalability witness:
context-sensitive sampling must cope with 488 calling contexts and
57,464 allocations in a single run.

Structure (Table III): the overflowed buffer is allocated as the
57,356th allocation with 445 contexts already active; 108 allocations
follow before the program ends.  Naive never detects; random/near-FIFO
sit at ~16-17% per execution.  The buggy context has a few earlier
allocations (halving its probability once or twice), and long virtual
runtime lets the watchpoint-ageing rule make the startup-pinned slots
evictable.  The overflow runs on a connection-handler thread.

The 1,000-execution protocol replays a 1/20-scale structural shrink
(see ``BuggyAppSpec.scaled``); Table III is measured at full scale.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

MYSQL = BuggyAppSpec(
    name="mysql",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="MYSQL",
    reference="CVE-2012-5612",
    total_contexts=488,
    total_allocations=57464,
    before_contexts=445,
    before_allocations=57356,
    victim_alloc_index=57356,
    victim_context_prior_allocs=6,
    churn=0.45,
    churn_lifetime=64,
    overflow_from_worker=True,
    structural_seed=5612,
    work_ns_per_alloc=2_000_000,
)
