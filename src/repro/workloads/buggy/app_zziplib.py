"""Zziplib-0.13.62 — CVE-2017-5974, a heap over-read in
``__zzip_get32`` (fetch.c).

The real bug: parsing a malformed ZIP central directory reads a 32-bit
word past the end of a heap buffer.  The access executes inside
``zziplib.so`` — the third of the paper's uninstrumented-library bugs
that ASan misses while CSOD detects.

Structure (Table III): 17 allocations over 13 contexts, victim near the
end of the run, first-four objects long-lived: the naive policy never
detects.  The buggy context allocated a few times earlier (each watch
halving its probability), and the small program's short wall-clock
keeps most slots fresh; the adaptive policies land around the paper's
~10-11% per-execution band.  As an over-read it leaves no canary
evidence — a watchpoint is the only thing that ever sees it.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_READ

ZZIPLIB = BuggyAppSpec(
    name="zziplib",
    bug_kind=KIND_OVER_READ,
    vuln_module="ZZIPLIB.SO",
    reference="CVE-2017-5974",
    total_contexts=13,
    total_allocations=17,
    before_contexts=13,
    before_allocations=17,
    victim_alloc_index=15,
    victim_context_prior_allocs=4,
    churn=0.0,
    structural_seed=5974,
    work_ns_per_alloc=4_000_000_000,
)
