"""Registry of the nine buggy applications.

``spec_for(name)`` returns the full-scale Table III structure;
``app_for(name, scale=None)`` returns a (cached) runnable app, by
default at the *effectiveness scale* — a structurally similar shrink of
the largest applications so that the 1,000-execution Table II runs are
tractable in pure Python.  Full-scale runs (``scale=1.0``) are used for
the Table III characteristics, which are measured once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import BuggyAppSpec, SyntheticBuggyApp
from repro.workloads.buggy.specs import ALL_SPECS

BUGGY_APPS: Dict[str, BuggyAppSpec] = {spec.name: spec for spec in ALL_SPECS}

# Scale factors for the repeated-execution experiments.  Only the two
# applications with tens of thousands of allocations are shrunk; the
# allocations-per-context ratio and the victim's relative position are
# preserved (see BuggyAppSpec.scaled).
EFFECTIVENESS_SCALE: Dict[str, float] = {
    "heartbleed": 0.25,
    "mysql": 0.05,
}

_app_cache: Dict[Tuple[str, float], SyntheticBuggyApp] = {}

# Generated oracle programs are addressed by self-describing names
# (``oracle:s<seed>:i<index>:<defect>``); the name alone rebuilds the
# app, which is what lets fleet workers and the triage bisector resolve
# generated apps exactly like the hand-written nine.  Solver-produced
# adversarial corners (``adv:s<seed>:t<target>``) resolve the same way.
ORACLE_PREFIX = "oracle:"
ADV_PREFIX = "adv:"


def spec_for(name: str) -> BuggyAppSpec:
    """The full-scale structural spec for one application."""
    try:
        return BUGGY_APPS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown buggy application {name!r}; "
            f"expected one of {sorted(BUGGY_APPS)}"
        ) from None


def app_for(name: str, scale: Optional[float] = None) -> SyntheticBuggyApp:
    """A runnable app, cached per (name, scale).

    ``scale=None`` selects the effectiveness scale (1.0 for most apps).
    Caching matters: building the MySQL schedule walks 57k events, and
    the Table II driver re-runs each app hundreds of times.
    """
    if scale is None:
        scale = EFFECTIVENESS_SCALE.get(name, 1.0)
    key = (name, scale)
    app = _app_cache.get(key)
    if app is None:
        if name.startswith(ORACLE_PREFIX):
            # Imported lazily: the oracle layer sits above workloads.
            from repro.oracle.generator import oracle_app_from_name

            app = oracle_app_from_name(name, scale)
        elif name.startswith(ADV_PREFIX):
            from repro.oracle.adversarial import adversarial_app_from_name

            app = adversarial_app_from_name(name, scale)
        else:
            app = SyntheticBuggyApp(spec_for(name).scaled(scale))
        _app_cache[key] = app
    return app
