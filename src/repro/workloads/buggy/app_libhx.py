"""LibHX-3.4 — CVE-2010-2947, a heap over-write in ``HX_split()``.

The real bug: ``HX_split`` miscounts delimiters and writes one pointer
past the end of the field array it allocated.  Crucially the overflow
happens *inside* ``libHX.so`` — a prebuilt shared library — which is
why the paper reports ASan missing it when libraries are not rebuilt
with instrumentation, while CSOD (which interposes at the allocator and
watches addresses, not instructions) is oblivious to where the code
lives.

Structure: 5 allocations over 4 contexts with the victim allocated
first.  The single fifth allocation (a fresh context at ~50%
probability) is the only event that can evict the victim's watchpoint,
which is what produces the just-under-perfect Table II rates (929/885
per 1000).  Which of the first few field arrays overflows varies with
the input line, modelled by the per-run victim-position jitter.

Documented deviation: the paper's Table III lists 1 context / 1
allocation "before overflow", which is inconsistent with those
sub-1000 rates; see EXPERIMENTS.md.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

LIBHX = BuggyAppSpec(
    name="libhx",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="LIBHX.SO",
    reference="CVE-2010-2947",
    total_contexts=4,
    total_allocations=5,
    before_contexts=4,
    before_allocations=5,
    victim_alloc_index=1,
    victim_position_jitter=3,
    structural_seed=2947,
)
