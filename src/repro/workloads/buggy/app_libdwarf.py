"""Libdwarf-20161021 — CVE-2016-9276, a heap over-read in
``dwarf_get_aranges_list``.

The real bug: parsing a malformed ``.debug_aranges`` section walks past
the end of a heap buffer allocated early during DWARF loading.

Structure (Table III): 152 allocations over 26 contexts; 147
allocations and 24 contexts occur before the overflow access.  The
overflowing object itself is allocated *within the first four
allocations* — the property the paper's §V-A1 explanation calls out —
so the naive policy pins a watchpoint on it at startup and always
detects (1000/1000).  Under random/near-FIFO the watchpoint must
survive ~145 further allocations of a churny allocate-parse-free loop;
it does so roughly half the time (paper: 480/459 per 1000), which makes
libdwarf the cleanest illustration of preemption risk on early-allocated
victims.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_READ

LIBDWARF = BuggyAppSpec(
    name="libdwarf",
    bug_kind=KIND_OVER_READ,
    vuln_module="LIBDWARF",
    reference="CVE-2016-9276",
    total_contexts=26,
    total_allocations=152,
    before_contexts=24,
    before_allocations=147,
    victim_alloc_index=2,
    victim_context_prior_allocs=0,
    churn=0.93,
    churn_lifetime=2,
    long_lived_first=0,
    victim_position_jitter=2,
    structural_seed=9276,
    work_ns_per_alloc=30_000_000,
)
