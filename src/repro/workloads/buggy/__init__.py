"""The nine buggy applications of Table I / Table III.

Each module defines one :class:`~repro.workloads.base.BuggyAppSpec`
whose structure reproduces the published characteristics — number of
allocation calling contexts, number of allocations, where the
overflowing object is allocated, where the overflow access happens, and
which module the bug lives in.  :mod:`repro.workloads.buggy.registry`
collects them.
"""

from repro.workloads.buggy.registry import (
    BUGGY_APPS,
    EFFECTIVENESS_SCALE,
    app_for,
    spec_for,
)

__all__ = ["BUGGY_APPS", "EFFECTIVENESS_SCALE", "app_for", "spec_for"]
