"""Polymorph-0.4.0 — BugBench's filename-conversion over-write.

The real bug: the Windows-to-Unix filename converter copies an
over-long filename into a fixed heap buffer.  Like gzip, a
single-allocation program whose object is availability-watched and
overflowed immediately: detected in every execution by every policy.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

POLYMORPH = BuggyAppSpec(
    name="polymorph",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="POLYMORPH",
    reference="BugBench",
    total_contexts=1,
    total_allocations=1,
    before_contexts=1,
    before_allocations=1,
    victim_alloc_index=1,
)
