"""Gzip-1.2.4 — BugBench's classic heap over-write.

The real bug: ``gzip`` copies the input file name into a fixed-size
buffer without checking its length; a long command-line argument
overruns it.  BugBench ships the buggy build and a triggering input.

Structure (Table III): a single allocation from a single calling
context, overflowed immediately — the simplest possible shape.  All
three replacement policies detect it in every execution (Table II:
1000/1000/1000): the very first allocation is always watched
("installation due to availability") and nothing can evict it before
the overflow.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

GZIP = BuggyAppSpec(
    name="gzip",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="GZIP",
    reference="BugBench",
    total_contexts=1,
    total_allocations=1,
    before_contexts=1,
    before_allocations=1,
    victim_alloc_index=1,
)
