"""Heartbleed — CVE-2014-0160, the over-READ that motivated the paper.

The real bug: OpenSSL's TLS heartbeat handler trusts the
attacker-declared payload length and ``memcpy``s up to 64 KB from a
request buffer that may be far smaller, leaking adjacent heap contents
(private keys included).  Nothing is written, so canaries, DoubleTake,
and HeapTherapy's write-evidence are all blind; CSOD's read/write
watchpoint on the boundary word fires on the read itself.

Structure (Table III): the paper's Nginx-1.3.9 + OpenSSL-1.0.1f setup
performs 5,403 allocations over 307 calling contexts; the overflowed
request buffer is allocated as the 5,392nd allocation, with 273
contexts already seen.  The buggy context (the BN_CTX/request-buffer
site) has a handful of earlier allocations, which is what pulls its
sampling probability to the ~0.36-0.40 per-execution detection band the
paper reports.  The naive policy never detects it: by allocation 5,392
all four watchpoints hold long-lived startup objects.

Known data quirk, documented in EXPERIMENTS.md: the paper's totals name
34 contexts that first appear within only 11 post-overflow allocations,
which cannot all materialize.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_READ

HEARTBLEED = BuggyAppSpec(
    name="heartbleed",
    bug_kind=KIND_OVER_READ,
    vuln_module="OPENSSL",
    reference="CVE-2014-0160",
    total_contexts=307,
    total_allocations=5403,
    before_contexts=273,
    before_allocations=5392,
    victim_alloc_index=5392,
    victim_context_prior_allocs=3,
    churn=0.55,
    churn_lifetime=24,
    structural_seed=160,
    work_ns_per_alloc=5_000_000,
)
