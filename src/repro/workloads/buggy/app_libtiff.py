"""Libtiff-4.0.1 — CVE-2013-4243, a heap over-write in
``readgifimage()`` (the ``gif2tiff`` converter).

The real bug: the GIF reader trusts the declared image dimensions and
writes decoded pixels past the heap buffer sized from an earlier,
smaller declaration.  The overflow executes inside ``libtiff.so`` —
uninstrumented in the paper's ASan configuration, hence one of the
three bugs ASan misses and CSOD catches.

Structure: like gzip, a single-allocation single-context program whose
only object is watched by availability and overflowed immediately —
always detected under every policy.
"""

from repro.workloads.base import BuggyAppSpec, KIND_OVER_WRITE

LIBTIFF = BuggyAppSpec(
    name="libtiff",
    bug_kind=KIND_OVER_WRITE,
    vuln_module="LIBTIFF.SO",
    reference="CVE-2013-4243",
    total_contexts=1,
    total_allocations=1,
    before_contexts=1,
    before_allocations=1,
    victim_alloc_index=1,
)
