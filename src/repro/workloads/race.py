"""An interleaving-dependent overflow.

The paper's introduction motivates production detection with exactly
this class of bug: "some bugs are only exposed in one particular
interleaving, and the number of interleavings is exponentially
proportional to the number of statements" (§I).  No test-time input can
reliably trigger them; an always-on detector sees them when they happen.

The workload is a classic TOCTOU between a producer and a consumer:

* the producer allocates a 64-byte message buffer, later decides the
  message grew to 128 bytes, publishes the new length, and *then*
  reallocates the buffer;
* the consumer reads the published length and copies that many bytes
  into whatever buffer pointer it sees.

If the scheduler runs the consumer inside the window between "publish
new length" and "swap buffer", 128 bytes land in a 64-byte object — a
heap over-write.  Under most interleavings nothing bad happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.callstack.frames import CallSite
from repro.workloads.base import SimProcess

SMALL_SIZE = 64
LARGE_SIZE = 128


@dataclass
class RaceRunResult:
    """What one interleaving produced."""

    triggered: bool  # did the consumer copy into the small buffer?
    buffer_address: int
    interleaving_steps: int


class RaceOverflowApp:
    """The producer/consumer TOCTOU workload."""

    def __init__(self):
        self.alloc_small = CallSite("RACED", "producer.c", 21, "make_message")
        self.alloc_large = CallSite("RACED", "producer.c", 58, "grow_message")
        self.copy_site = CallSite("RACED", "consumer.c", 90, "deliver_message")

    def sites(self):
        return (self.alloc_small, self.alloc_large, self.copy_site)

    def run(self, process: SimProcess, scheduler_seed: int = 0) -> RaceRunResult:
        for site in self.sites():
            try:
                process.symbols.add(site)
            except ValueError:
                pass
        scheduler = process.machine.new_scheduler(seed=scheduler_seed)
        heap = process.heap
        cpu = process.machine.cpu
        main = process.main_thread

        shared = {
            "buffer": 0,
            "length": 0,
            "published": False,
            "done": False,
            "copied_into": 0,
        }

        def producer():
            with main.call_stack.calling(self.alloc_small):
                shared["buffer"] = heap.malloc(main, SMALL_SIZE)
            shared["small_buffer"] = shared["buffer"]
            shared["length"] = SMALL_SIZE
            shared["published"] = True
            yield  # some unrelated work
            yield
            # The message grew: publish the length FIRST (the bug)...
            shared["length"] = LARGE_SIZE
            yield  # <-- the race window
            # ...then swap in a large-enough buffer.
            with main.call_stack.calling(self.alloc_large):
                new_buffer = heap.malloc(main, LARGE_SIZE)
            old = shared["buffer"]
            shared["buffer"] = new_buffer
            heap.free(main, old)
            yield
            shared["done"] = True

        def consumer(thread):
            while not shared["published"]:
                yield
            # Deliver exactly once, at whatever moment the scheduler
            # lets this thread run.
            with thread.call_stack.calling(self.copy_site):
                buffer = shared["buffer"]
                length = shared["length"]
                shared["copied_into"] = buffer
                shared["copied_length"] = length
                cpu.store(thread, buffer, b"\x42" * length)
            yield
            while not shared["done"]:
                yield

        holder = {}

        def consumer_body():
            yield from consumer(holder["thread"])

        scheduler.adopt_main(producer())
        holder["thread"] = scheduler.spawn(consumer_body(), name="consumer")
        steps = scheduler.run()
        heap.free(main, shared["buffer"])

        # Triggered iff the oversized copy landed in the ORIGINAL small
        # buffer: the consumer read the new length while the pointer
        # still named the 64-byte allocation.
        triggered = (
            shared.get("copied_length", 0) > SMALL_SIZE
            and shared["copied_into"] == shared["small_buffer"]
        )
        return RaceRunResult(
            triggered=triggered,
            buffer_address=shared["copied_into"],
            interleaving_steps=steps,
        )
