"""Heap-trace recording and replay.

A downstream user of this reproduction usually wants one thing first:
*run CSOD against the allocation behaviour of my own program*.  The
trace subsystem supports that workflow:

* :class:`TraceRecorder` hooks a process's heap interposer and CPU and
  records every malloc/free (with the full calling-context locations)
  and every out-of-bounds-relevant access into a list of events;
* :func:`save_trace` / :func:`load_trace` serialize that list as JSON;
* :class:`TraceApp` replays a trace inside a fresh simulated process —
  under CSOD, under ASan, or bare — reconstructing one
  :class:`~repro.callstack.frames.CallSite` chain per distinct recorded
  location.

Replaying keeps allocation *order*, sizes, lifetimes, and contexts; the
concrete addresses are re-assigned by the replay allocator, and recorded
accesses are re-issued relative to the object they touched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.callstack.frames import CallSite
from repro.errors import WorkloadError
from repro.workloads.base import SimProcess

TRACE_VERSION = 1

OP_MALLOC = "malloc"
OP_FREE = "free"
OP_LOAD = "load"
OP_STORE = "store"

_OPS = (OP_MALLOC, OP_FREE, OP_LOAD, OP_STORE)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded heap-relevant event.

    * malloc: ``obj`` is the object's trace id, ``size`` its size,
      ``context`` the allocation chain (outermost first);
    * free: ``obj`` names the object;
    * load/store: ``obj`` names the object the access is relative to,
      ``offset`` may run past ``size`` (that is the overflow), and
      ``context`` is the accessing chain.
    """

    op: str
    obj: int
    size: int = 0
    offset: int = 0
    context: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.op not in _OPS:
            raise WorkloadError(f"unknown trace op {self.op!r}")

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "obj": self.obj,
            "size": self.size,
            "offset": self.offset,
            "context": list(self.context),
        }

    @staticmethod
    def from_json(payload: dict) -> "TraceEvent":
        return TraceEvent(
            op=payload["op"],
            obj=int(payload["obj"]),
            size=int(payload.get("size", 0)),
            offset=int(payload.get("offset", 0)),
            context=tuple(payload.get("context", ())),
        )


class TraceRecorder:
    """Records a process's heap activity into a list of events.

    Attach *before* the workload runs; detach (or just read ``events``)
    afterwards.  Recording wraps the interposer's active library, so it
    observes exactly what the application asked for — independent of
    whether CSOD/ASan is preloaded underneath.
    """

    def __init__(self, process: SimProcess):
        self._process = process
        self.events: List[TraceEvent] = []
        self._object_ids: Dict[int, int] = {}  # live address -> trace id
        self._sizes: Dict[int, int] = {}
        self._next_id = 0
        self._inner = process.heap.active_library
        process.heap.preload(self)
        process.machine.cpu.add_access_hook(self._on_access)

    def detach(self) -> None:
        self._process.heap.preload(self._inner)
        self._process.machine.cpu.remove_access_hook(self._on_access)

    # ------------------------------------------------------------------
    # HeapLibrary surface (recording wrapper)
    # ------------------------------------------------------------------
    def _context_of(self, thread) -> Tuple[str, ...]:
        return tuple(str(frame) for frame in thread.call_stack)

    def malloc(self, thread, size: int) -> int:
        address = self._inner.malloc(thread, size)
        obj = self._next_id
        self._next_id += 1
        self._object_ids[address] = obj
        self._sizes[address] = size
        self.events.append(
            TraceEvent(OP_MALLOC, obj, size=size, context=self._context_of(thread))
        )
        return address

    def memalign(self, thread, alignment: int, size: int) -> int:
        address = self._inner.memalign(thread, alignment, size)
        obj = self._next_id
        self._next_id += 1
        self._object_ids[address] = obj
        self._sizes[address] = size
        self.events.append(
            TraceEvent(OP_MALLOC, obj, size=size, context=self._context_of(thread))
        )
        return address

    def free(self, thread, address: int) -> None:
        obj = self._object_ids.pop(address, None)
        self._sizes.pop(address, None)
        self._inner.free(thread, address)
        if obj is not None:
            self.events.append(TraceEvent(OP_FREE, obj))

    def usable_size(self, address: int) -> int:
        return self._inner.usable_size(address)

    # ------------------------------------------------------------------
    # Access recording
    # ------------------------------------------------------------------
    def _on_access(self, thread, address: int, size: int, kind: str) -> None:
        # Attribute the access to the closest live object at or below
        # the address; record the offset (which may exceed the size —
        # an overflow, the thing worth replaying).
        for base, obj in self._object_ids.items():
            length = self._sizes[base]
            if base <= address <= base + length + 64:
                self.events.append(
                    TraceEvent(
                        OP_STORE if kind == "w" else OP_LOAD,
                        obj,
                        size=size,
                        offset=address - base,
                        context=self._context_of(thread),
                    )
                )
                return


def save_trace(events: List[TraceEvent], path: str) -> None:
    payload = {"version": TRACE_VERSION, "events": [e.to_json() for e in events]}
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_trace(path: str) -> List[TraceEvent]:
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != TRACE_VERSION:
        raise WorkloadError(f"unsupported trace version in {path}")
    return [TraceEvent.from_json(e) for e in payload["events"]]


class TraceApp:
    """Replays a recorded trace inside a fresh process."""

    def __init__(self, events: List[TraceEvent], name: str = "trace"):
        self.events = list(events)
        self.name = name
        self._sites: Dict[str, CallSite] = {}
        self._validate()

    @staticmethod
    def from_file(path: str, name: Optional[str] = None) -> "TraceApp":
        return TraceApp(load_trace(path), name=name or path)

    def _validate(self) -> None:
        live: set = set()
        for event in self.events:
            if event.op == OP_MALLOC:
                if event.obj in live:
                    raise WorkloadError(f"object {event.obj} allocated twice")
                live.add(event.obj)
            elif event.op == OP_FREE:
                if event.obj not in live:
                    raise WorkloadError(f"free of unknown object {event.obj}")
                live.discard(event.obj)
            elif event.obj not in live:
                raise WorkloadError(f"access to dead object {event.obj}")

    def _site_for(self, location: str) -> CallSite:
        site = self._sites.get(location)
        if site is None:
            module, _, rest = location.partition("/")
            file, _, line = rest.rpartition(":")
            site = CallSite(
                module or "TRACE",
                file or "unknown.c",
                int(line) if line.isdigit() else 0,
                f"fn_{len(self._sites)}",
            )
            self._sites[location] = site
        return site

    def run(self, process: SimProcess) -> Dict[int, int]:
        """Replay; returns the trace-id -> replay-address mapping."""
        thread = process.main_thread
        heap = process.heap
        cpu = process.machine.cpu
        addresses: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        for event in self.events:
            guards = [
                thread.call_stack.calling(self._site_for(loc))
                for loc in event.context
            ]
            for guard in guards:
                guard.__enter__()
            try:
                if event.op == OP_MALLOC:
                    addresses[event.obj] = heap.malloc(thread, event.size)
                    sizes[event.obj] = event.size
                elif event.op == OP_FREE:
                    heap.free(thread, addresses[event.obj])
                elif event.op == OP_LOAD:
                    cpu.load(thread, addresses[event.obj] + event.offset, event.size)
                else:
                    cpu.store(
                        thread,
                        addresses[event.obj] + event.offset,
                        b"\xee" * event.size,
                    )
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
        for site in self._sites.values():
            try:
                process.symbols.add(site)
            except ValueError:
                pass
        return addresses
