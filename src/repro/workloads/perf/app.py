"""Replayable heap traces for the performance applications.

A :class:`PerfApp` replays (a slice of) the application's allocation
trace at the application's *true allocation rate*: virtual time advances
by ``base_runtime / allocations`` per allocation, so rate-dependent
runtime rules — the 5,000-allocations-in-10-seconds throttle, watchpoint
ageing, reviving — engage exactly as they would over the full run.

Full-scale PARSEC traces (up to 48M allocations) are too large to replay
per-allocation in Python, so the replay is capped (default 20,000
events) and the overhead model extrapolates the per-allocation event
costs linearly — the scaling the paper itself asserts ("CSOD's overhead
is proportional to the number of allocations", §V-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.callstack.frames import CallSite
from repro.workloads.base import SimProcess
from repro.workloads.perf.specs import PerfAppSpec

DEFAULT_SIM_ALLOC_CAP = 20_000


@dataclass
class PerfRunMeasurement:
    """Everything one replay yields for the models."""

    spec: PerfAppSpec
    sim_allocations: int
    scale: float  # sim_allocations / spec.allocations
    watched_times: int
    contexts_seen: int
    replacements: int
    peak_live_blocks: int
    ledger_counts: Dict[str, int]
    ledger_nanos: Dict[str, int]

    def nanos(self, event: str) -> int:
        return self.ledger_nanos.get(event, 0)

    def count(self, event: str) -> int:
        return self.ledger_counts.get(event, 0)


@dataclass(frozen=True)
class _TraceEvent:
    context_id: int
    size: int
    free_after: Optional[int]


class PerfApp:
    """One Table IV application as a replayable trace."""

    def __init__(self, spec: PerfAppSpec, sim_alloc_cap: int = DEFAULT_SIM_ALLOC_CAP):
        self.spec = spec
        self.sim_allocations = min(spec.allocations, sim_alloc_cap)
        self.scale = self.sim_allocations / spec.allocations
        self._trace = self._build_trace()
        self._sites: Optional[Dict[int, List[CallSite]]] = None

    # ------------------------------------------------------------------
    # Trace construction
    # ------------------------------------------------------------------
    def _build_trace(self) -> List[_TraceEvent]:
        """A deterministic trace with zipf-skewed context reuse.

        Every context appears at least once (spread uniformly through
        the run, as programs discover code paths over time); remaining
        allocations reuse contexts with a 1/rank weight, giving the
        hot-context concentration that the throttle rule targets.
        """
        spec = self.spec
        rng = random.Random(spec.structural_seed)
        n = self.sim_allocations
        contexts = min(spec.contexts, n)
        sequence: List[Optional[int]] = [None] * n
        # First occurrences, spread through the run.
        stride = n / contexts
        for c in range(contexts):
            slot = int(c * stride)
            while sequence[slot] is not None:
                slot = (slot + 1) % n
            sequence[slot] = c
        weights = [1.0 / (rank + 1) for rank in range(contexts)]
        pool = list(range(contexts))
        filler = iter(rng.choices(pool, weights=weights, k=n))
        events: List[_TraceEvent] = []
        for i in range(n):
            context_id = sequence[i]
            if context_id is None:
                context_id = next(filler)
            if rng.random() < spec.churn:
                free_after = i + 1 + rng.randrange(max(1, spec.churn_lifetime))
            else:
                free_after = None
            size = rng.choice((16, 24, 32, 48, 64, 96, 128, 192, 256, 512))
            events.append(_TraceEvent(context_id, size, free_after))
        return events

    def _build_sites(self) -> Dict[int, List[CallSite]]:
        app = self.spec.name.upper()
        main = CallSite(app, "main.c", 1, "main", frame_size=64)
        sites: Dict[int, List[CallSite]] = {}
        contexts = min(self.spec.contexts, self.sim_allocations)
        for c in range(contexts):
            sites[c] = [
                main,
                CallSite(app, f"mod{c % 11}.c", 50 + c, f"fn_{c}", frame_size=48),
                CallSite(app, "alloc.c", 900 + c, f"alloc_{c}", frame_size=32),
            ]
        return sites

    def sites(self) -> Dict[int, List[CallSite]]:
        if self._sites is None:
            self._sites = self._build_sites()
        return self._sites

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self, process: SimProcess, csod=None) -> PerfRunMeasurement:
        """Replay the trace; ``csod`` (if given) is read for WT stats."""
        spec = self.spec
        sites = self.sites()
        seen = set()
        for chain in sites.values():
            for site in chain:
                if site.return_address not in seen:
                    seen.add(site.return_address)
                    process.symbols.add(site)
        # The paper ran every workload with 16 threads; watchpoint
        # installation costs scale with the alive-thread count, and
        # allocations round-robin over the workers so each thread's
        # lock-free RNG stream (§III-A1's design point) is exercised.
        workers = [process.main_thread] + [
            process.spawn_thread(f"worker-{i}") for i in range(spec.threads - 1)
        ]
        heap = process.heap
        clock = process.machine.clock
        work_ns = spec.work_ns_per_alloc

        addresses: Dict[int, int] = {}
        owners: Dict[int, object] = {}
        pending: Dict[int, List[int]] = {}
        quantum = process.machine.quantum
        for index, event in enumerate(self._trace):
            # Each replayed trace event is one scheduler quantum.
            quantum.advance()
            thread = workers[index % len(workers)]
            for j in pending.pop(index, ()):
                address = addresses.pop(j, None)
                if address is not None:
                    heap.free(owners.pop(j), address)
            chain = sites[event.context_id]
            guards = [thread.call_stack.calling(site) for site in chain]
            for guard in guards:
                guard.__enter__()
            try:
                address = heap.malloc(thread, event.size)
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
            addresses[index] = address
            owners[index] = thread
            if event.free_after is not None:
                pending.setdefault(event.free_after, []).append(index)
            clock.advance(work_ns)
        for index in sorted(addresses):
            heap.free(owners[index], addresses[index])

        stats = csod.stats() if csod is not None else None
        return PerfRunMeasurement(
            spec=spec,
            sim_allocations=self.sim_allocations,
            scale=self.scale,
            watched_times=stats.watched_times if stats else 0,
            contexts_seen=stats.contexts if stats else len(sites),
            replacements=stats.replacements if stats else 0,
            peak_live_blocks=process.allocator.stats.peak_live_blocks,
            ledger_counts=process.machine.ledger.counts(),
            ledger_nanos={
                event: process.machine.ledger.nanos(event)
                for event in process.machine.ledger.counts()
            },
        )
