"""Registry of the 19 performance applications."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.perf.app import DEFAULT_SIM_ALLOC_CAP, PerfApp
from repro.workloads.perf.specs import ALL_PERF_SPECS, PerfAppSpec

PERF_APPS: Dict[str, PerfAppSpec] = {spec.name: spec for spec in ALL_PERF_SPECS}

_cache: Dict[Tuple[str, int], PerfApp] = {}


def perf_spec_for(name: str) -> PerfAppSpec:
    try:
        return PERF_APPS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown performance application {name!r}; "
            f"expected one of {sorted(PERF_APPS)}"
        ) from None


def perf_app_for(name: str, sim_alloc_cap: int = DEFAULT_SIM_ALLOC_CAP) -> PerfApp:
    """A (cached) replayable app; trace construction is the costly part."""
    key = (name, sim_alloc_cap)
    app = _cache.get(key)
    if app is None:
        app = PerfApp(perf_spec_for(name), sim_alloc_cap)
        _cache[key] = app
    return app
