"""Structural and modelling specs for the 19 performance applications.

Columns taken from the paper:

* ``loc``, ``contexts``, ``allocations`` and ``paper_watched_times``
  come from Table IV;
* ``mem_original_kb`` comes from Table V's "Original" column;
* ``paper_csod_overhead`` / ``paper_asan_overhead`` are the Fig. 7 bars
  (read off the plot; the text pins the averages at 6.7% and 39%).

Modelling inputs the paper implies but does not tabulate:

* ``base_runtime_s`` — native runtime of the evaluation input (the text
  fixes Ferret at "less than five seconds"; others are plausible values
  for the stated inputs on a 16-core Xeon E5-2640);
* ``access_intensity`` — fraction of runtime spent in instrumentable
  loads/stores (drives the ASan overhead model; near zero for the
  IO-bound Aget/Pfscan, highest for x264);
* ``instrumented_fraction`` — share of that access time compiled with
  ASan (libraries such as libbz2 or libz were not instrumented);
* ``threads`` — 16 for all (PARSEC ran with 16 threads; the servers
  with 16 clients);
* ``peak_live_objects`` — live heap objects at peak, consistent with
  the original footprint and the allocation counts (drives Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PerfAppSpec:
    """One row of Table IV plus the modelling inputs."""

    name: str
    suite: str  # "parsec" or "real"
    loc: int
    contexts: int
    allocations: int
    threads: int
    base_runtime_s: float
    mem_original_kb: int
    peak_live_objects: int
    access_intensity: float
    instrumented_fraction: float = 1.0
    # Allocation churn for the replayed heap trace.
    churn: float = 0.7
    churn_lifetime: int = 32
    # Published reference points, for side-by-side output.
    paper_watched_times: int = 0
    paper_csod_overhead: float = 0.0
    paper_asan_overhead: float = 0.0
    structural_seed: int = 99

    def __post_init__(self):
        if self.contexts < 1 or self.allocations < 1:
            raise WorkloadError(f"{self.name}: empty workload")
        if self.allocations < self.contexts:
            raise WorkloadError(f"{self.name}: more contexts than allocations")
        if not 0.0 <= self.access_intensity <= 1.5:
            raise WorkloadError(f"{self.name}: implausible access intensity")
        if self.base_runtime_s <= 0:
            raise WorkloadError(f"{self.name}: base runtime must be positive")

    @property
    def allocation_rate_per_s(self) -> float:
        return self.allocations / self.base_runtime_s

    @property
    def work_ns_per_alloc(self) -> int:
        return max(1, int(1e9 * self.base_runtime_s / self.allocations))


# The nineteen definitions live in the documented suite modules; they
# import PerfAppSpec from this module, so these imports must come after
# the class definition above.
from repro.workloads.perf.parsec_apps import (  # noqa: E402
    BLACKSCHOLES,
    BODYTRACK,
    CANNEAL,
    DEDUP,
    FACESIM,
    FERRET,
    FLUIDANIMATE,
    FREQMINE,
    PARSEC_SPECS,
    RAYTRACE,
    STREAMCLUSTER,
    SWAPTIONS,
    VIPS,
    X264,
)
from repro.workloads.perf.server_apps import (  # noqa: E402
    APACHE,
    MEMCACHED_PERF,
    MYSQL_PERF,
    SERVER_SPECS,
)
from repro.workloads.perf.utility_apps import (  # noqa: E402
    AGET,
    PBZIP2,
    PFSCAN,
    UTILITY_SPECS,
)

ALL_PERF_SPECS = PARSEC_SPECS + SERVER_SPECS + UTILITY_SPECS
