"""The nineteen performance applications of Table IV / Table V / Fig. 7.

Thirteen PARSEC benchmarks plus MySQL, Apache, Memcached, Aget, Pbzip2,
and Pfscan.  Each is a :class:`~repro.workloads.perf.specs.PerfAppSpec`
carrying the published characteristics (LOC, calling contexts,
allocations, original memory footprint) plus the modelling inputs the
paper implies but does not tabulate (base runtime, memory-access
intensity, instrumented fraction, thread count).
"""

from repro.workloads.perf.app import PerfApp, PerfRunMeasurement
from repro.workloads.perf.registry import PERF_APPS, perf_app_for, perf_spec_for
from repro.workloads.perf.specs import ALL_PERF_SPECS, PerfAppSpec

__all__ = [
    "PerfApp",
    "PerfRunMeasurement",
    "PERF_APPS",
    "perf_app_for",
    "perf_spec_for",
    "ALL_PERF_SPECS",
    "PerfAppSpec",
]
