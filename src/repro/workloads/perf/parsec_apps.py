"""The thirteen PARSEC benchmarks of Table IV (native inputs, 16 threads).

Each spec carries the published Table IV/V columns plus the modelling
inputs DESIGN.md §2 documents.  The per-app notes record what the paper
says (or implies) about each one and why its modelling inputs look the
way they do.
"""

from __future__ import annotations

from repro.workloads.perf.specs import PerfAppSpec

# Blackscholes: the smallest heap client in the suite — four allocations
# total, so CSOD's cost is pure initialization.  Its Table IV row
# (CC=4, allocations=4, WT=4) is the degenerate everything-is-watched
# case.
BLACKSCHOLES = PerfAppSpec(
    name="blackscholes", suite="parsec", loc=479,
    contexts=4, allocations=4, threads=16,
    base_runtime_s=40.0, mem_original_kb=613, peak_live_objects=8,
    access_intensity=0.10,
    paper_watched_times=4, paper_csod_overhead=0.01, paper_asan_overhead=0.10,
)

# Bodytrack: moderate allocation traffic (431k) against a tiny 34 KB
# footprint — which is why its Table V ASan row explodes (1079%) while
# CSOD adds 17 KB.
BODYTRACK = PerfAppSpec(
    name="bodytrack", suite="parsec", loc=11_938,
    contexts=81, allocations=431_022, threads=16,
    base_runtime_s=25.0, mem_original_kb=34, peak_live_objects=100,
    access_intensity=0.45, churn=0.15, churn_lifetime=64,
    paper_watched_times=325, paper_csod_overhead=0.03, paper_asan_overhead=0.45,
)

# Canneal: 30.7M allocations from only 10 contexts — the first of the
# paper's three >10% CSOD outliers ("checking their contexts accounts
# for the majority of the overhead", §V-B).
CANNEAL = PerfAppSpec(
    name="canneal", suite="parsec", loc=4_530,
    contexts=10, allocations=30_728_172, threads=16,
    base_runtime_s=38.0, mem_original_kb=940, peak_live_objects=10_000,
    access_intensity=0.60, churn=0.60, churn_lifetime=64,
    paper_watched_times=79, paper_csod_overhead=0.17, paper_asan_overhead=0.55,
)

# Dedup: pipeline-parallel compression; a large share of its access time
# sits in zlib, which the paper's ASan build did not instrument
# (instrumented_fraction 0.6).  Also the Table V anomaly where the
# paper's ASan RSS measured *below* the original (96%) — VmHWM noise we
# do not reproduce.
DEDUP = PerfAppSpec(
    name="dedup", suite="parsec", loc=37_307,
    contexts=93, allocations=4_074_135, threads=16,
    base_runtime_s=20.0, mem_original_kb=1_599, peak_live_objects=4000,
    access_intensity=0.35, instrumented_fraction=0.6,
    churn=0.02, churn_lifetime=64,
    paper_watched_times=182, paper_csod_overhead=0.06, paper_asan_overhead=0.25,
)

# Facesim: the physics simulator; big footprint, modest allocation rate
# relative to its runtime — low single-digit CSOD overhead.
FACESIM = PerfAppSpec(
    name="facesim", suite="parsec", loc=45_748,
    contexts=109, allocations=4_746_070, threads=16,
    base_runtime_s=45.0, mem_original_kb=2_422, peak_live_objects=600,
    access_intensity=0.40, churn=0.5, churn_lifetime=128,
    paper_watched_times=369, paper_csod_overhead=0.03, paper_asan_overhead=0.30,
)

# Ferret: the second CSOD outlier — not allocation volume (139k) but
# runtime: "Ferret runs for less than five seconds, which exaggerates
# the proportion of CSOD's initialization overhead" (§V-B).
FERRET = PerfAppSpec(
    name="ferret", suite="parsec", loc=40_997,
    contexts=118, allocations=139_246, threads=16,
    base_runtime_s=3.5, mem_original_kb=68, peak_live_objects=100,
    access_intensity=0.40, churn=0.12, churn_lifetime=64,
    paper_watched_times=346, paper_csod_overhead=0.16, paper_asan_overhead=0.50,
)

# Fluidanimate: two allocation contexts and five watched-times over
# 230k allocations — the sampler collapses to near-zero work instantly.
FLUIDANIMATE = PerfAppSpec(
    name="fluidanimate", suite="parsec", loc=880,
    contexts=2, allocations=229_910, threads=16,
    base_runtime_s=30.0, mem_original_kb=408, peak_live_objects=200,
    access_intensity=0.45, churn=0.02, churn_lifetime=64,
    paper_watched_times=5, paper_csod_overhead=0.02, paper_asan_overhead=0.40,
)

# Freqmine: crashed under ASan in the paper's environment — Fig. 7 and
# Table V carry no ASan entries for it, and the drivers reproduce the
# omission.
FREQMINE = PerfAppSpec(
    name="freqmine", suite="parsec", loc=2_709,
    contexts=125, allocations=4_255, threads=16,
    base_runtime_s=35.0, mem_original_kb=1_241, peak_live_objects=120,
    access_intensity=0.50, churn=0.02, churn_lifetime=64,
    paper_watched_times=218, paper_csod_overhead=0.02,
    paper_asan_overhead=float("nan"),
)

# Raytrace: 45M allocations — the third >10% CSOD outlier.
RAYTRACE = PerfAppSpec(
    name="raytrace", suite="parsec", loc=36_871,
    contexts=63, allocations=45_037_327, threads=16,
    base_runtime_s=62.0, mem_original_kb=1_135, peak_live_objects=4000,
    access_intensity=0.50, churn=0.65, churn_lifetime=48,
    paper_watched_times=561, paper_csod_overhead=0.15, paper_asan_overhead=0.40,
)

# Streamcluster: compute-bound with under 9k allocations; near-zero
# CSOD cost, mid-pack ASan cost (access checking dominates).
STREAMCLUSTER = PerfAppSpec(
    name="streamcluster", suite="parsec", loc=2_043,
    contexts=21, allocations=8_861, threads=16,
    base_runtime_s=55.0, mem_original_kb=111, peak_live_objects=20,
    access_intensity=0.55, churn=0.0, churn_lifetime=64,
    paper_watched_times=30, paper_csod_overhead=0.01, paper_asan_overhead=0.45,
)

# Swaptions: 48M allocations from 10 contexts, nearly all short-lived —
# the workload §III-B2's throttle rule exists for ("calling contexts
# with an extremely large number of allocations").  Its 9 KB footprint
# against that traffic is also Table V's ASan worst case (4178%).
SWAPTIONS = PerfAppSpec(
    name="swaptions", suite="parsec", loc=1_631,
    contexts=10, allocations=48_001_795, threads=16,
    base_runtime_s=210.0, mem_original_kb=9, peak_live_objects=50,
    access_intensity=0.35, churn=0.98, churn_lifetime=2,
    paper_watched_times=370, paper_csod_overhead=0.05, paper_asan_overhead=0.35,
)

# Vips: the context-count stressor — 400 distinct allocation sites.
VIPS = PerfAppSpec(
    name="vips", suite="parsec", loc=206_059,
    contexts=400, allocations=1_425_257, threads=16,
    base_runtime_s=18.0, mem_original_kb=59, peak_live_objects=60,
    access_intensity=0.45, churn=0.005, churn_lifetime=64,
    paper_watched_times=259, paper_csod_overhead=0.04, paper_asan_overhead=0.45,
)

# X264: the most access-intense member — the Fig. 7 bars ASan clips at
# 2.23/2.24x — with trivial CSOD cost (36k allocations).
X264 = PerfAppSpec(
    name="x264", suite="parsec", loc=33_817,
    contexts=60, allocations=35_753, threads=16,
    base_runtime_s=20.0, mem_original_kb=486, peak_live_objects=120,
    access_intensity=1.15, churn=0.0, churn_lifetime=64,
    paper_watched_times=37, paper_csod_overhead=0.01, paper_asan_overhead=1.24,
)

PARSEC_SPECS = (
    BLACKSCHOLES,
    BODYTRACK,
    CANNEAL,
    DEDUP,
    FACESIM,
    FERRET,
    FLUIDANIMATE,
    FREQMINE,
    RAYTRACE,
    STREAMCLUSTER,
    SWAPTIONS,
    VIPS,
    X264,
)
