"""The utility workloads of Table IV: Aget, Pbzip2, Pfscan.

The paper's IO-bound exhibit: when a program spends its time in
``read``/``write``/network waits, neither CSOD (no allocations to
sample) nor ASan (no instrumented accesses executing) costs anything —
the right edge of Fig. 7.
"""

from __future__ import annotations

from repro.workloads.perf.specs import PerfAppSpec

# Aget downloads a 600 MB file from a quiescent local server: 46
# allocations, wall-clock set by the network.
AGET = PerfAppSpec(
    name="aget", suite="real", loc=1_205,
    contexts=14, allocations=46, threads=16,
    base_runtime_s=48.0, mem_original_kb=7, peak_live_objects=30,
    access_intensity=0.03,
    paper_watched_times=16, paper_csod_overhead=0.00, paper_asan_overhead=0.02,
)

# Pbzip2 compresses a 7 GB file; the hot loops are inside libbz2, which
# ASan did not instrument (instrumented_fraction 0.25 — the paper notes
# "ASan may impose less overhead if a large portion of time is spent in
# libraries without instrumentation, such as in Pbzip2").
PBZIP2 = PerfAppSpec(
    name="pbzip2", suite="real", loc=12_108,
    contexts=13, allocations=57_746, threads=16,
    base_runtime_s=70.0, mem_original_kb=128, peak_live_objects=100,
    access_intensity=0.40, instrumented_fraction=0.25,
    churn=0.03, churn_lifetime=64,
    paper_watched_times=58, paper_csod_overhead=0.01, paper_asan_overhead=0.12,
)

# Pfscan greps 4 GB of data: six allocations, disk-bound throughout.
# Also Table V's other below-original anomaly (CSOD 91%) that the
# envelope model cannot reproduce.
PFSCAN = PerfAppSpec(
    name="pfscan", suite="real", loc=1_091,
    contexts=6, allocations=6, threads=16,
    base_runtime_s=45.0, mem_original_kb=4_044, peak_live_objects=6,
    access_intensity=0.04,
    paper_watched_times=5, paper_csod_overhead=0.00, paper_asan_overhead=0.03,
)

UTILITY_SPECS = (AGET, PBZIP2, PFSCAN)
