"""The server workloads of Table IV: MySQL, Apache, Memcached.

All three were driven by load generators in the paper (sysbench with 16
clients and 100k requests; ab with 100k requests; python-memcached with
20 loop iterations), with Fig. 7 normalizing *throughput* rather than
wall-clock — equivalent for the overhead fraction the model computes.
"""

from __future__ import annotations

from repro.workloads.perf.specs import PerfAppSpec

# MySQL under sysbench: 1.3M LOC, 1,186 allocation contexts — the
# largest context population in the study and the biggest WT (1,362).
# Per-request allocation traffic dominates CSOD's cost; modest in a
# throughput-bound server.
MYSQL_PERF = PerfAppSpec(
    name="mysql", suite="real", loc=1_290_401,
    contexts=1_186, allocations=1_565_311, threads=16,
    base_runtime_s=30.0, mem_original_kb=124, peak_live_objects=100,
    access_intensity=0.35, instrumented_fraction=0.85,
    churn=0.15, churn_lifetime=64,
    paper_watched_times=1_362, paper_csod_overhead=0.05, paper_asan_overhead=0.35,
)

# Apache under ab: only 357 allocations for 100k requests (per-request
# memory comes from its own pool allocator, which malloc interposition
# does not see) — near-zero CSOD overhead, and a Table V row dominated
# by CSOD's fixed hash table (5 KB -> 28 KB).
APACHE = PerfAppSpec(
    name="apache", suite="real", loc=269_126,
    contexts=56, allocations=357, threads=16,
    base_runtime_s=30.0, mem_original_kb=5, peak_live_objects=200,
    access_intensity=0.12, instrumented_fraction=0.8,
    churn=0.02, churn_lifetime=64,
    paper_watched_times=27, paper_csod_overhead=0.01, paper_asan_overhead=0.08,
)

# Memcached under python-memcached: slab-allocated items mean few
# malloc-level allocations (468); like Apache, a tiny footprint whose
# Table V percentage is all fixed cost.
MEMCACHED_PERF = PerfAppSpec(
    name="memcached", suite="real", loc=14_748,
    contexts=85, allocations=468, threads=16,
    base_runtime_s=25.0, mem_original_kb=7, peak_live_objects=70,
    access_intensity=0.18, churn=0.12, churn_lifetime=64,
    paper_watched_times=79, paper_csod_overhead=0.02, paper_asan_overhead=0.12,
)

SERVER_SPECS = (MYSQL_PERF, APACHE, MEMCACHED_PERF)
