"""The paper's applications, rebuilt synthetically.

The original evaluation ran nine real buggy applications (Table I/III)
and nineteen performance applications (Table IV).  Neither the binaries,
the buggy inputs, nor the testbed are reproducible from Python, so each
application is rebuilt as a *synthetic program* whose heap behaviour
matches the published characteristics: number of allocation calling
contexts, number of allocations, position of the overflowing object and
of the overflow access, bug kind (over-read/over-write), and the module
the bug lives in (which decides whether ASan's instrumentation covers
it).

:mod:`repro.workloads.base` holds the program framework;
:mod:`repro.workloads.buggy` the nine Table I applications;
:mod:`repro.workloads.perf` the nineteen Table IV applications.
"""

from repro.workloads.base import (
    AllocationEvent,
    BuggyAppSpec,
    SimProcess,
    SyntheticBuggyApp,
)

__all__ = [
    "AllocationEvent",
    "BuggyAppSpec",
    "SimProcess",
    "SyntheticBuggyApp",
]
