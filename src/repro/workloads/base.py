"""Workload framework: simulated processes and synthetic buggy programs.

A :class:`SimProcess` bundles one machine with its heap and symbol
table — the "application + libc" a runtime library gets preloaded into.

A :class:`SyntheticBuggyApp` replays a deterministic *allocation
schedule* derived from a :class:`BuggyAppSpec`, whose fields mirror the
paper's Table III: total calling contexts, total allocations, how many
of each occur before the overflow access, where the overflowing object
is allocated, and the bug kind.  The schedule is fixed per application
(program logic does not change between runs); all run-to-run variation
comes from CSOD's own sampling RNG and the scheduler seed — exactly the
paper's setting, where each of the 1,000 executions re-ran the same
program on the same buggy input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.callstack.frames import CallSite
from repro.callstack.symbols import SymbolTable
from repro.errors import WorkloadError
from repro.heap.allocator import FreeListAllocator
from repro.heap.interpose import LibraryInterposer, RawHeap
from repro.machine.machine import DEFAULT_HEAP_BASE, DEFAULT_HEAP_SIZE, Machine
from repro.machine.threads import SimThread

KIND_OVER_READ = "over-read"
KIND_OVER_WRITE = "over-write"


class SimProcess:
    """One simulated process: machine + heap + symbols.

    ``allocator`` selects the baseline heap implementation — the
    first-fit free-list allocator (the default, glibc-like) or the
    segregated size-class allocator (tcmalloc-like).  CSOD interposes
    on either without knowing which: the paper's "no custom allocator"
    property.
    """

    ALLOCATORS = ("first_fit", "segregated")

    def __init__(
        self,
        seed: int = 0,
        heap_base: int = DEFAULT_HEAP_BASE,
        heap_size: int = DEFAULT_HEAP_SIZE,
        allocator: str = "first_fit",
    ):
        self.machine = Machine(seed=seed)
        arena = self.machine.map_heap_arena(heap_base, heap_size)
        if allocator == "first_fit":
            self.allocator = FreeListAllocator(arena.start, arena.size)
        elif allocator == "segregated":
            from repro.heap.segregated import SegregatedAllocator

            self.allocator = SegregatedAllocator(arena.start, arena.size)
        else:
            raise WorkloadError(
                f"unknown allocator {allocator!r}; expected one of "
                f"{self.ALLOCATORS}"
            )
        self.raw_heap = RawHeap(self.machine, self.allocator)
        self.heap = LibraryInterposer(self.raw_heap)
        self.symbols = SymbolTable()
        self.seed = seed

    @property
    def main_thread(self) -> SimThread:
        return self.machine.main_thread

    def spawn_thread(self, name: str = "") -> SimThread:
        """pthread_create: the runtime's thread hooks fire here."""
        return self.machine.threads.create(name)

    def register_sites(self, sites) -> None:
        self.symbols.add_all(sites)


@dataclass(frozen=True)
class AllocationEvent:
    """One allocation in a schedule.

    ``free_after`` is the (0-based) allocation index after which the
    object is freed; ``None`` leaves it alive until program end.
    """

    index: int
    context_id: int
    size: int
    free_after: Optional[int]
    is_victim: bool = False


@dataclass(frozen=True)
class BuggyAppSpec:
    """Structural description of one Table I/III application."""

    name: str
    bug_kind: str  # over-read / over-write
    vuln_module: str  # module containing the overflowing code
    reference: str  # BugBench / CVE id
    total_contexts: int
    total_allocations: int
    # Events that occur before the overflow access (Table III cols 4-5).
    before_contexts: int
    before_allocations: int
    # 1-based allocation index at which the overflowing object is
    # allocated; must be <= before_allocations.
    victim_alloc_index: int
    # How many allocations from the victim's own context occur before the
    # victim itself (shapes the context's watch probability).
    victim_context_prior_allocs: int = 0
    # Fraction of non-victim objects freed shortly after allocation;
    # drives watchpoint slot churn.
    churn: float = 0.0
    # How long a churned object lives, in subsequent allocations.
    churn_lifetime: int = 8
    # Bytes the overflow runs past the boundary (continuous overflows
    # touch the very next word; CSOD only detects continuous ones).
    overflow_length: int = 8
    # Where past the object the overflow STARTS.  0 = continuous (the
    # next byte).  A positive skip models the §VI limitation: "CSOD may
    # not be able to detect non-continuous overflows that skip the
    # addresses of installed watchpoints".
    overflow_skip: int = 0
    # Fixed seed for the *structure* (not the per-execution randomness).
    structural_seed: int = 1234
    # Stack depth of allocation contexts (affects backtrace costs).
    context_depth: int = 4
    # Virtual nanoseconds of application work between allocations.  This
    # is what lets time-based rules (watchpoint ageing, the throttle
    # window, reviving) engage the way they do on real runs: a server
    # that allocates for minutes ages its installed watchpoints, a
    # millisecond-long utility never does.
    work_ns_per_alloc: int = 0
    # How many leading objects are long-lived (they pin the naive
    # policy's watchpoints).  4 models programs whose startup objects
    # persist; 0 models allocate-free-loop programs like libdwarf.
    long_lived_first: int = 4
    # Per-execution jitter of the victim's position: the victim swaps
    # places with one of the next ``jitter`` allocations, chosen from the
    # run seed.  Models input/interleaving-driven variation in which of
    # several same-shaped early objects is the one that overflows.
    victim_position_jitter: int = 0
    # Server-style programs (memcached, mysql): the request-handling
    # worker thread performs the overflow, not the thread that allocated
    # the object.  Detection must not depend on this — CSOD arms every
    # watchpoint on every alive thread (Fig. 3).
    overflow_from_worker: bool = False

    def __post_init__(self):
        if self.bug_kind not in (KIND_OVER_READ, KIND_OVER_WRITE):
            raise WorkloadError(f"bad bug kind {self.bug_kind!r}")
        if not 1 <= self.before_contexts <= self.total_contexts:
            raise WorkloadError(f"{self.name}: bad before_contexts")
        if not 1 <= self.before_allocations <= self.total_allocations:
            raise WorkloadError(f"{self.name}: bad before_allocations")
        if not 1 <= self.victim_alloc_index <= self.before_allocations:
            raise WorkloadError(f"{self.name}: victim must precede the overflow")
        if not 0.0 <= self.churn <= 1.0:
            raise WorkloadError(f"{self.name}: churn must be a fraction")

    def scaled(self, factor: float) -> "BuggyAppSpec":
        """A structurally similar spec with allocation counts scaled down.

        Used by the 1,000-execution effectiveness runs for the largest
        applications (MySQL-scale full simulation is too slow to repeat
        a thousand times in pure Python).  Context counts scale with the
        square root so the allocations-per-context ratio shrinks more
        gently; positions scale proportionally.
        """
        if factor >= 1.0:
            return self
        if factor <= 0.0:
            raise WorkloadError("scale factor must be positive")

        def scale_allocs(value: int) -> int:
            return max(1, int(round(value * factor)))

        ctx_factor = factor**0.5
        total_ctx = max(1, int(round(self.total_contexts * ctx_factor)))
        before_ctx = min(
            total_ctx, max(1, int(round(self.before_contexts * ctx_factor)))
        )
        total_allocs = scale_allocs(self.total_allocations)
        before_allocs = min(total_allocs, scale_allocs(self.before_allocations))
        victim_index = min(
            before_allocs, max(1, int(round(self.victim_alloc_index * factor)))
        )
        return replace(
            self,
            total_contexts=max(total_ctx, before_ctx),
            total_allocations=max(total_allocs, before_allocs),
            before_contexts=before_ctx,
            before_allocations=before_allocs,
            victim_alloc_index=victim_index,
            victim_context_prior_allocs=min(
                self.victim_context_prior_allocs, max(0, victim_index - 1)
            ),
            # Keep the total virtual runtime (and therefore the ageing
            # and throttling dynamics) roughly invariant under scaling.
            work_ns_per_alloc=int(self.work_ns_per_alloc / factor),
        )


def build_schedule(spec: BuggyAppSpec) -> Tuple[List[AllocationEvent], int]:
    """Derive the deterministic allocation schedule from a spec.

    Returns (events, victim_event_index).  The schedule satisfies, by
    construction:

    * exactly ``before_contexts`` distinct contexts and
      ``before_allocations`` allocations occur up to the overflow access;
    * the victim is allocated at ``victim_alloc_index``;
    * the victim's context has ``victim_context_prior_allocs`` earlier
      allocations;
    * the remaining contexts/allocations happen after the access.
    """
    rng = random.Random(spec.structural_seed)
    victim_context = 0  # context 0 is the buggy one, by convention
    events: List[AllocationEvent] = []

    before = spec.before_allocations
    after = spec.total_allocations - before
    victim_pos = spec.victim_alloc_index - 1  # 0-based

    # --- contexts for the "before" phase --------------------------------
    context_sequence: List[Optional[int]] = [None] * before
    context_sequence[victim_pos] = victim_context

    # Prior allocations from the victim's context, placed before it.
    prior = min(spec.victim_context_prior_allocs, victim_pos)
    prior_slots = rng.sample(range(victim_pos), prior) if prior else []
    for slot in prior_slots:
        context_sequence[slot] = victim_context

    # Every "before" context appears at least once.
    other_before = [c for c in range(1, spec.before_contexts)]
    free_slots = [i for i, c in enumerate(context_sequence) if c is None]
    rng.shuffle(free_slots)
    if len(other_before) > len(free_slots):
        raise WorkloadError(
            f"{spec.name}: not enough allocations before the overflow to "
            f"cover {spec.before_contexts} contexts"
        )
    for context_id, slot in zip(other_before, free_slots):
        context_sequence[slot] = context_id
    # Remaining slots: weighted reuse of the before-contexts (heap-heavy
    # contexts exist in every real program).  The buggy context (0) is
    # excluded — its appearance count is controlled solely by
    # ``victim_context_prior_allocs``, because every extra watch of it
    # halves the victim's own sampling probability.
    before_pool = list(range(1, spec.before_contexts)) or [0]
    weights = [1.0 / (1 + i % 7) for i in range(len(before_pool))]
    for i, context_id in enumerate(context_sequence):
        if context_id is None:
            context_sequence[i] = rng.choices(before_pool, weights=weights)[0]

    # --- contexts for the "after" phase ---------------------------------
    # Contexts that only appear after the overflow.  Some specs (e.g.
    # Heartbleed's published numbers) name more late contexts than there
    # are late allocations; the surplus simply never materializes — one
    # allocation can only exercise one context.
    after_new = list(range(spec.before_contexts, spec.total_contexts))[:after]
    after_sequence: List[int] = []
    for i in range(after):
        if i < len(after_new):
            after_sequence.append(after_new[i])
        else:
            after_sequence.append(rng.choice(before_pool + after_new))

    # --- assemble events with lifetimes ---------------------------------
    full_sequence = context_sequence + after_sequence
    for index, context_id in enumerate(full_sequence):
        is_victim = index == victim_pos
        if is_victim:
            free_after = None  # the victim lives until the access
        elif index < spec.long_lived_first:
            # Leading long-lived objects fill the watchpoints under the
            # naive policy, which is what makes naive miss
            # late-allocated victims entirely (§V-A1).
            free_after = None
        elif rng.random() < spec.churn:
            free_after = index + 1 + rng.randrange(max(1, spec.churn_lifetime))
        else:
            free_after = None
        size = rng.choice((16, 24, 32, 48, 64, 96, 128, 256))
        events.append(
            AllocationEvent(
                index=index,
                context_id=context_id,
                size=size,
                free_after=free_after,
                is_victim=is_victim,
            )
        )
    return events, victim_pos


@dataclass
class RunResult:
    """What one execution of a buggy app produced."""

    victim_address: int
    victim_size: int
    overflow_performed: bool
    allocations: int
    contexts_touched: int


class SyntheticBuggyApp:
    """Replays a :class:`BuggyAppSpec` schedule against a process."""

    def __init__(self, spec: BuggyAppSpec):
        self.spec = spec
        self.events, self.victim_index = build_schedule(spec)
        self._sites_cache: Optional[Dict[int, List[CallSite]]] = None
        # A _pre_access hook that moves or resizes the victim (realloc)
        # publishes the new (address, size) here; the injected access
        # and the RunResult then target the post-hook victim.  Reset at
        # the top of every run — apps are cached and reused.
        self._victim_override: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Program image
    # ------------------------------------------------------------------
    def _build_sites(self) -> Dict[int, List[CallSite]]:
        """One call chain per context: main -> ... -> allocation site.

        Context 0 (the buggy one) allocates inside ``vuln_module``; other
        contexts spread over the application's own modules.
        """
        sites: Dict[int, List[CallSite]] = {}
        depth = max(2, self.spec.context_depth)
        main = CallSite(self.spec.name.upper(), "main.c", 10, "main", frame_size=64)
        for context_id in range(self.spec.total_contexts):
            module = (
                self.spec.vuln_module
                if context_id == 0
                else f"{self.spec.name.upper()}/mod{context_id % 5}"
            )
            chain = [main]
            for level in range(1, depth - 1):
                chain.append(
                    CallSite(
                        module,
                        f"layer{level}.c",
                        100 + context_id * 10 + level,
                        f"ctx{context_id}_fn{level}",
                        frame_size=32 + 16 * (context_id % 3),
                    )
                )
            chain.append(
                CallSite(
                    module,
                    "alloc.c",
                    500 + context_id,
                    f"ctx{context_id}_alloc",
                    frame_size=48,
                )
            )
            sites[context_id] = chain
        # The overflow access site (e.g. the memcpy in t1_lib.c).
        self.access_site = CallSite(
            self.spec.vuln_module, "overflow.c", 42, "overflowing_statement",
            frame_size=32,
        )
        return sites

    def sites(self) -> Dict[int, List[CallSite]]:
        if self._sites_cache is None:
            self._sites_cache = self._build_sites()
        return self._sites_cache

    def all_sites(self) -> List[CallSite]:
        flattened = []
        seen = set()
        for chain in self.sites().values():
            for site in chain:
                if site.return_address not in seen:
                    seen.add(site.return_address)
                    flattened.append(site)
        flattened.append(self.access_site)
        return flattened

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _events_for_run(self, run_seed: int) -> List[AllocationEvent]:
        """The schedule for one execution, with victim-position jitter.

        The structure is fixed; only which of a few interchangeable
        early objects turns out to be the overflowing one varies with
        the run seed (modelling input/interleaving variation).
        """
        jitter = self.spec.victim_position_jitter
        if jitter <= 0:
            return self.events
        rng = random.Random(run_seed * 2654435761 + self.spec.structural_seed)
        victim_pos = self.victim_index
        target = min(victim_pos + rng.randint(0, jitter), len(self.events) - 1)
        if target == victim_pos:
            return self.events
        events = list(self.events)
        a, b = events[victim_pos], events[target]
        events[victim_pos] = replace(
            b, index=a.index, is_victim=False, free_after=None
        )
        events[target] = replace(
            a, index=b.index, is_victim=True, free_after=None
        )
        return events

    def _pre_access(
        self,
        process: SimProcess,
        thread,
        heap,
        addresses: Dict[int, int],
        live: Dict[int, AllocationEvent],
    ) -> None:
        """Hook invoked once, immediately before the injected access.

        The base program does nothing here.  Generated oracle workloads
        override it to mutate heap state first — e.g. freeing the victim
        so the access becomes a use-after-free.  Implementations that
        free an object must also drop it from ``live`` so teardown does
        not free it twice.
        """

    def run(self, process: SimProcess) -> RunResult:
        """Execute the program once inside ``process``."""
        sites = self.sites()
        process.register_sites(self.all_sites())
        thread = process.main_thread
        heap = process.heap
        cpu = process.machine.cpu
        events = self._events_for_run(process.seed)
        self._victim_override = None

        addresses: Dict[int, int] = {}
        live: Dict[int, AllocationEvent] = {}
        pending_frees: Dict[int, List[int]] = {}
        victim_address = -1
        victim_size = 0
        overflow_done = False

        # Server-style apps overflow from a worker thread that exists
        # from startup (the request handler); CSOD's pthread_create
        # interposition has armed every watchpoint on it.
        overflow_thread = thread
        if self.spec.overflow_from_worker:
            overflow_thread = process.spawn_thread("request-worker")

        def do_overflow() -> None:
            self._pre_access(process, overflow_thread, heap, addresses, live)
            if self.spec.overflow_length <= 0:
                # Heap-state-only defects (double-free) inject no
                # load/store; the _pre_access hook was the defect.
                return
            v_address, v_size = victim_address, victim_size
            if self._victim_override is not None:
                v_address, v_size = self._victim_override
            with overflow_thread.call_stack.calling(sites[0][0]):
                with overflow_thread.call_stack.calling(self.access_site):
                    boundary = v_address + v_size + self.spec.overflow_skip
                    if self.spec.bug_kind == KIND_OVER_READ:
                        cpu.load(
                            overflow_thread, boundary, self.spec.overflow_length
                        )
                    else:
                        junk = b"\xa5" * self.spec.overflow_length
                        cpu.store(overflow_thread, boundary, junk)

        quantum = process.machine.quantum
        for event in events:
            # Each replayed trace event is one scheduler quantum.
            quantum.advance()
            # Scheduled frees due before this allocation.
            for index in pending_frees.pop(event.index, []):
                address = addresses.pop(index, None)
                if address is not None and index in live:
                    del live[index]
                    heap.free(thread, address)
            # The allocation itself, under its context's call chain.
            chain = sites[event.context_id]
            guards = [thread.call_stack.calling(site) for site in chain]
            for guard in guards:
                guard.__enter__()
            try:
                address = heap.malloc(thread, event.size)
            finally:
                for guard in reversed(guards):
                    guard.__exit__(None, None, None)
            addresses[event.index] = address
            live[event.index] = event
            if self.spec.work_ns_per_alloc:
                process.machine.clock.advance(self.spec.work_ns_per_alloc)
            if event.free_after is not None:
                pending_frees.setdefault(event.free_after, []).append(event.index)
            if event.is_victim:
                victim_address = address
                victim_size = event.size
            # The overflow access fires right after the last "before"
            # allocation — the Table III position.
            if event.index + 1 == self.spec.before_allocations:
                do_overflow()
                overflow_done = True

        if not overflow_done:
            do_overflow()
            overflow_done = True

        # Program teardown: free everything still live (victim included,
        # which is what hands the canary checker its evidence).
        for index, address in sorted(addresses.items()):
            if index in live:
                heap.free(thread, address)
        if self._victim_override is not None:
            victim_address, victim_size = self._victim_override
        return RunResult(
            victim_address=victim_address,
            victim_size=victim_size,
            overflow_performed=overflow_done,
            allocations=len(events),
            contexts_touched=self.spec.total_contexts,
        )
