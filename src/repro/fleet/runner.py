"""The fleet campaign runner.

Ties the subsystem together: builds seeded :class:`ExecutionSpec`s,
dispatches them in **waves** through one persistent :class:`FleetPool`,
folds each wave's pre-merged :class:`PartialAggregate` into the
:class:`FleetAggregator`, merges uploaded evidence into the
:class:`EvidenceStore` between waves (broadcasting only the *delta* to
workers), and records telemetry.

Waves are the determinism contract.  Executions inside one wave share
the evidence snapshot taken at the wave boundary; signatures uploaded
by a wave become visible to the next wave only.  Worker scheduling
order therefore cannot leak into detection outcomes: a campaign with a
fixed seed produces byte-identical aggregated results at any worker
count, while evidence still propagates fleet-wide after each wave —
with ``workers=1`` this degenerates to exactly the serial
execution-to-execution persistence of §V-A2.

Wave sizing: without evidence sharing there is no cross-execution
state, so the whole campaign is one wave (one chunk per worker, minimal
dispatch overhead).  With sharing, waves default to ``workers``
executions — the historical protocol — and ``wave_size`` pins the
boundary explicitly; a fixed ``wave_size`` makes *shared-evidence*
campaigns byte-identical across worker counts too, since the evidence
visibility boundaries no longer move with ``workers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from repro.triage.bugdb import BugDatabase, TriageUpdate

from repro.core.config import CSODConfig, POLICY_NEAR_FIFO
from repro.errors import CampaignCancelled
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.evidence_store import EvidenceStore
from repro.fleet.pool import DEFAULT_TIMEOUT_SECONDS, FleetPool
from repro.fleet.specs import ExecutionResult, ExecutionSpec
from repro.fleet.telemetry import JsonlEventLog, MetricsRegistry


@dataclass
class FleetRunResult:
    """Everything a fleet campaign produced."""

    app: str
    executions: int
    workers: int
    share_evidence: bool
    seed_base: int
    results: List[ExecutionResult]
    aggregator: FleetAggregator
    metrics: MetricsRegistry
    evidence: frozenset = field(default_factory=frozenset)
    # Populated when the campaign fed a bug database at completion.
    triage: Optional["TriageUpdate"] = None
    # True when the campaign was stopped before all executions ran;
    # results/aggregator then cover the completed waves only.
    cancelled: bool = False

    @property
    def detections(self) -> List[bool]:
        """Per-execution watchpoint detection flags, in execution order."""
        return [r.detected_by_watchpoint for r in self.results]


@dataclass(frozen=True)
class WaveProgress:
    """What one completed wave contributed — the streaming unit.

    Everything a live progress consumer needs without touching the
    campaign's mutable state: cumulative counts are snapshots taken at
    the wave boundary, so publishing these concurrently with the next
    wave is race-free.
    """

    wave_index: int
    waves_total: int
    wave_executions: int
    executions_done: int
    executions_total: int
    executions_detected: int
    unique_reports: int
    raw_reports: int
    dedup_ratio: float
    new_evidence: int
    evidence_epoch: int


class FleetCampaign:
    """A fleet campaign driven one wave at a time.

    The incremental core behind :func:`run_fleet` (which just loops
    :meth:`run_next_wave` to completion) and the campaign service
    (which interleaves waves of many campaigns over shared worker
    slots).  Construction validates everything fail-fast and builds the
    persistent :class:`FleetPool`; the wave plan is fixed at
    construction from (executions, workers, wave_size, share_evidence)
    alone, so two campaigns with equal parameters run equal waves no
    matter who schedules them — the multi-tenant determinism contract.
    """

    def __init__(
        self,
        app: str,
        executions: int,
        workers: int = 1,
        policy: str = POLICY_NEAR_FIFO,
        share_evidence: bool = False,
        seed_base: int = 0,
        config: Optional[CSODConfig] = None,
        evidence_store: Optional[EvidenceStore] = None,
        event_log: Optional[JsonlEventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
        chunk_size: Optional[int] = None,
        wave_size: Optional[int] = None,
        bug_db: Optional["BugDatabase"] = None,
        campaign_id: Optional[str] = None,
        wire: Optional[str] = None,
    ):
        if executions <= 0:
            raise ValueError(f"executions must be positive, got {executions}")
        if wave_size is not None and wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        self.app = app
        self.executions = executions
        self.workers = workers
        self.share_evidence = share_evidence
        self.seed_base = seed_base
        self.config = config or CSODConfig(replacement_policy=policy)
        self.metrics = metrics or MetricsRegistry()
        self.event_log = event_log
        self.bug_db = bug_db
        self.campaign_id = campaign_id
        store = evidence_store if share_evidence else None
        if share_evidence and store is None:
            store = EvidenceStore()  # in-memory, campaign-local sharing
        self.store = store
        self.pool = FleetPool(
            workers=workers,
            timeout_seconds=timeout_seconds,
            chunk_size=chunk_size,
            wire=wire,
        )
        self.aggregator = FleetAggregator()
        self.results: List[ExecutionResult] = []
        # No store, no cross-execution state: one wave, maximal chunking.
        self.wave_size = wave_size or (
            max(1, workers) if store is not None else executions
        )
        self._wave_starts = list(range(0, executions, self.wave_size))
        self._next_wave = 0
        self._finished = False
        self.cancelled = False
        if store is not None:
            self.pool.set_evidence_base(store.snapshot())

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def waves_total(self) -> int:
        return len(self._wave_starts)

    @property
    def waves_done(self) -> int:
        return self._next_wave

    @property
    def executions_done(self) -> int:
        return len(self.results)

    @property
    def done(self) -> bool:
        return self._next_wave >= len(self._wave_starts)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_next_wave(self) -> Optional[WaveProgress]:
        """Run one wave; ``None`` once the campaign is complete.

        Raises :class:`repro.errors.CampaignCancelled` if the pool was
        stopped (via :meth:`cancel`) before or during the wave; worker
        processes are already terminated when that propagates.
        """
        if self._finished:
            raise RuntimeError("campaign already finished")
        if self.done:
            return None
        wave_start = self._wave_starts[self._next_wave]
        wave_indices = range(
            wave_start, min(wave_start + self.wave_size, self.executions)
        )
        specs = [
            ExecutionSpec(
                app=self.app,
                seed=self.seed_base + index,
                index=index,
                config=self.config,
            )
            for index in wave_indices
        ]
        outcome = self.pool.run_wave(specs)
        self.aggregator.merge_partial(outcome.partial)
        for result in outcome.results:
            self.results.append(result)
            if not result.ok:
                self.aggregator.failed.append(result)
            _record_execution(self.metrics, result, self.event_log)
        merged = 0
        if self.store is not None:
            new = self.store.absorb(
                signature
                for result in outcome.results
                for signature in result.new_evidence
            )
            merged = len(new)
            self.metrics.counter("evidence_signatures_merged").inc(merged)
            self.pool.advance_evidence(new)
        self._next_wave += 1
        return WaveProgress(
            wave_index=self._next_wave - 1,
            waves_total=self.waves_total,
            wave_executions=len(specs),
            executions_done=self.executions_done,
            executions_total=self.executions,
            executions_detected=self.aggregator.executions_detected,
            unique_reports=self.aggregator.unique_reports(),
            raw_reports=self.aggregator.raw_reports,
            dedup_ratio=round(self.aggregator.dedup_ratio, 4),
            new_evidence=merged,
            evidence_epoch=self.pool.evidence_epoch,
        )

    def cancel(self) -> None:
        """Stop the campaign; safe from any thread.

        The wave in flight (if any) terminates its worker processes and
        raises :class:`CampaignCancelled` in whatever thread is driving
        it; the driver then calls :meth:`finish` with
        ``cancelled=True`` to drain telemetry.
        """
        self.pool.request_stop()

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        self.pool.close()

    def finish(self, cancelled: bool = False) -> FleetRunResult:
        """Close the pool, record campaign telemetry, feed the bug DB.

        With ``cancelled=True`` the campaign event still lands in the
        metrics/event log (the telemetry drain the one-shot CLI and the
        service both rely on) but the bug database is left untouched —
        a partial campaign must not advance cross-campaign status.
        """
        if self._finished:
            raise RuntimeError("campaign already finished")
        self._finished = True
        self.cancelled = cancelled
        self.pool.close()
        _record_campaign(
            self.metrics,
            self.pool,
            self.aggregator,
            self.event_log,
            self.app,
            cancelled=cancelled,
        )
        triage_update = None
        if self.bug_db is not None and not cancelled:
            triage_update = _feed_bug_db(
                self.bug_db,
                self.aggregator,
                self.campaign_id,
                self.metrics,
                self.event_log,
            )
        return FleetRunResult(
            app=self.app,
            executions=self.executions,
            workers=self.workers,
            share_evidence=self.share_evidence,
            seed_base=self.seed_base,
            results=self.results,
            aggregator=self.aggregator,
            metrics=self.metrics,
            evidence=(
                self.store.snapshot() if self.store is not None else frozenset()
            ),
            triage=triage_update,
            cancelled=cancelled,
        )


def run_fleet(
    app: str,
    executions: int,
    workers: int = 1,
    policy: str = POLICY_NEAR_FIFO,
    share_evidence: bool = False,
    seed_base: int = 0,
    config: Optional[CSODConfig] = None,
    evidence_store: Optional[EvidenceStore] = None,
    event_log: Optional[JsonlEventLog] = None,
    metrics: Optional[MetricsRegistry] = None,
    timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
    chunk_size: Optional[int] = None,
    wave_size: Optional[int] = None,
    bug_db: Optional["BugDatabase"] = None,
    campaign_id: Optional[str] = None,
    wire: Optional[str] = None,
) -> FleetRunResult:
    """Run one app's detection campaign across a simulated fleet.

    ``wire`` selects the coordinator↔worker data plane: ``"shm"``
    (default) shares evidence/context segments and binary result rings
    over ``/dev/shm``; ``"pickle"`` forces the fully-pickled legacy
    plane.  Aggregated output is byte-identical either way.

    ``bug_db`` plugs the campaign into the triage layer: at campaign
    end the aggregated reports are clustered
    (:func:`repro.triage.cluster_reports`) and folded into the
    database under ``campaign_id`` (default ``campaign-<seq>``), and
    the per-status deltas land in the metrics registry and event log.

    A stop request (Ctrl-C, or :meth:`FleetCampaign.cancel` from
    another thread) terminates the worker processes, drains the
    partial campaign's telemetry, and re-raises — nothing leaks.
    """
    campaign = FleetCampaign(
        app,
        executions=executions,
        workers=workers,
        policy=policy,
        share_evidence=share_evidence,
        seed_base=seed_base,
        config=config,
        evidence_store=evidence_store,
        event_log=event_log,
        metrics=metrics,
        timeout_seconds=timeout_seconds,
        chunk_size=chunk_size,
        wave_size=wave_size,
        bug_db=bug_db,
        campaign_id=campaign_id,
        wire=wire,
    )
    try:
        while campaign.run_next_wave() is not None:
            pass
    except (CampaignCancelled, KeyboardInterrupt):
        campaign.finish(cancelled=True)
        raise
    except BaseException:
        campaign.close()
        raise
    return campaign.finish()


def _feed_bug_db(
    bug_db: "BugDatabase",
    aggregator: FleetAggregator,
    campaign_id: Optional[str],
    metrics: MetricsRegistry,
    event_log: Optional[JsonlEventLog],
) -> "TriageUpdate":
    """Cluster the campaign's reports into the persistent bug database."""
    # Imported here: triage consumes fleet.aggregate, so a top-level
    # import would be circular.
    from repro.triage.clustering import cluster_reports

    clusters = cluster_reports(aggregator.reports())
    update = bug_db.update(
        clusters,
        campaign_id=campaign_id,
        total_executions=aggregator.executions_ok,
    )
    metrics.counter("triage_clusters").inc(update.clusters)
    metrics.counter("triage_bugs_new").inc(len(update.new))
    metrics.counter("triage_bugs_reproduced").inc(len(update.reproduced))
    metrics.counter("triage_bugs_regressed").inc(len(update.regressed))
    merged = aggregator.unique_reports() - update.clusters
    metrics.counter("triage_signatures_merged").inc(max(0, merged))
    if event_log is not None:
        event_log.emit(
            "triage",
            campaign_id=update.campaign_id,
            seq=update.seq,
            clusters=update.clusters,
            new=list(update.new),
            reproduced=list(update.reproduced),
            regressed=list(update.regressed),
            bugs_total=len(bug_db),
        )
    return update


def _record_execution(
    metrics: MetricsRegistry,
    result: ExecutionResult,
    event_log: Optional[JsonlEventLog],
) -> None:
    metrics.counter("executions_run").inc()
    if not result.ok:
        metrics.counter("executions_failed").inc()
    if result.detected:
        metrics.counter("executions_detected").inc()
    metrics.counter("reports_raised").inc(len(result.reports))
    metrics.counter("watchpoint_arms").inc(result.watched_times)
    metrics.histogram("execution_wall_ms").observe(result.wall_seconds * 1e3)
    metrics.histogram("reports_per_execution").observe(len(result.reports))
    metrics.histogram("allocations_per_execution").observe(result.allocations)
    if event_log is not None:
        event_log.emit(
            "execution",
            app=result.app,
            index=result.index,
            seed=result.seed,
            outcome=result.outcome,
            attempts=result.attempts,
            detected=result.detected,
            detected_by_watchpoint=result.detected_by_watchpoint,
            reports=[r.signature for r in result.reports],
            new_evidence=list(result.new_evidence),
            allocations=result.allocations,
            watched_times=result.watched_times,
            wall_ms=round(result.wall_seconds * 1e3, 3),
            error=result.error,
        )


def _record_campaign(
    metrics: MetricsRegistry,
    pool: FleetPool,
    aggregator: FleetAggregator,
    event_log: Optional[JsonlEventLog],
    app: str,
    cancelled: bool = False,
) -> None:
    metrics.counter("worker_crashes").inc(pool.crashes)
    metrics.counter("worker_timeouts").inc(pool.timeouts)
    metrics.counter("worker_retries").inc(pool.retries)
    metrics.counter("executor_rebuilds").inc(pool.executor_rebuilds)
    metrics.counter("reports_unique").inc(aggregator.unique_reports())
    retry_histogram = metrics.histogram("retry_wall_ms")
    for wall_ms in pool.retry_wall_ms:
        retry_histogram.observe(wall_ms)
    if event_log is None:
        return
    for entry in aggregator.reports():
        event_log.emit(
            "report",
            app=app,
            signature=entry.signature,
            kind=entry.kind,
            count=entry.count,
            executions=entry.executions,
            first_seen=entry.first_seen,
            sources=dict(sorted(entry.sources.items())),
        )
    campaign_fields = dict(
        app=app,
        executions=aggregator.executions,
        detected=aggregator.executions_detected,
        raw_reports=aggregator.raw_reports,
        unique_reports=aggregator.unique_reports(),
        dedup_ratio=round(aggregator.dedup_ratio, 4),
    )
    # Only cancelled campaigns carry the flag, so completed campaigns'
    # event logs stay byte-identical to what they were before
    # cancellation existed.
    if cancelled:
        campaign_fields["cancelled"] = True
    event_log.emit("campaign", **campaign_fields)
