"""The fleet campaign runner.

Ties the subsystem together: builds seeded :class:`ExecutionSpec`s,
dispatches them in **waves** through one persistent :class:`FleetPool`,
folds each wave's pre-merged :class:`PartialAggregate` into the
:class:`FleetAggregator`, merges uploaded evidence into the
:class:`EvidenceStore` between waves (broadcasting only the *delta* to
workers), and records telemetry.

Waves are the determinism contract.  Executions inside one wave share
the evidence snapshot taken at the wave boundary; signatures uploaded
by a wave become visible to the next wave only.  Worker scheduling
order therefore cannot leak into detection outcomes: a campaign with a
fixed seed produces byte-identical aggregated results at any worker
count, while evidence still propagates fleet-wide after each wave —
with ``workers=1`` this degenerates to exactly the serial
execution-to-execution persistence of §V-A2.

Wave sizing: without evidence sharing there is no cross-execution
state, so the whole campaign is one wave (one chunk per worker, minimal
dispatch overhead).  With sharing, waves default to ``workers``
executions — the historical protocol — and ``wave_size`` pins the
boundary explicitly; a fixed ``wave_size`` makes *shared-evidence*
campaigns byte-identical across worker counts too, since the evidence
visibility boundaries no longer move with ``workers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from repro.triage.bugdb import BugDatabase, TriageUpdate

from repro.core.config import CSODConfig, POLICY_NEAR_FIFO
from repro.fleet.aggregate import FleetAggregator
from repro.fleet.evidence_store import EvidenceStore
from repro.fleet.pool import DEFAULT_TIMEOUT_SECONDS, FleetPool
from repro.fleet.specs import ExecutionResult, ExecutionSpec
from repro.fleet.telemetry import JsonlEventLog, MetricsRegistry


@dataclass
class FleetRunResult:
    """Everything a fleet campaign produced."""

    app: str
    executions: int
    workers: int
    share_evidence: bool
    seed_base: int
    results: List[ExecutionResult]
    aggregator: FleetAggregator
    metrics: MetricsRegistry
    evidence: frozenset = field(default_factory=frozenset)
    # Populated when the campaign fed a bug database at completion.
    triage: Optional["TriageUpdate"] = None

    @property
    def detections(self) -> List[bool]:
        """Per-execution watchpoint detection flags, in execution order."""
        return [r.detected_by_watchpoint for r in self.results]


def run_fleet(
    app: str,
    executions: int,
    workers: int = 1,
    policy: str = POLICY_NEAR_FIFO,
    share_evidence: bool = False,
    seed_base: int = 0,
    config: Optional[CSODConfig] = None,
    evidence_store: Optional[EvidenceStore] = None,
    event_log: Optional[JsonlEventLog] = None,
    metrics: Optional[MetricsRegistry] = None,
    timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
    chunk_size: Optional[int] = None,
    wave_size: Optional[int] = None,
    bug_db: Optional["BugDatabase"] = None,
    campaign_id: Optional[str] = None,
) -> FleetRunResult:
    """Run one app's detection campaign across a simulated fleet.

    ``bug_db`` plugs the campaign into the triage layer: at campaign
    end the aggregated reports are clustered
    (:func:`repro.triage.cluster_reports`) and folded into the
    database under ``campaign_id`` (default ``campaign-<seq>``), and
    the per-status deltas land in the metrics registry and event log.
    """
    if executions <= 0:
        raise ValueError(f"executions must be positive, got {executions}")
    config = config or CSODConfig(replacement_policy=policy)
    metrics = metrics or MetricsRegistry()
    store = evidence_store if share_evidence else None
    if share_evidence and store is None:
        store = EvidenceStore()  # in-memory, campaign-local sharing
    pool = FleetPool(
        workers=workers,
        timeout_seconds=timeout_seconds,
        chunk_size=chunk_size,
    )
    aggregator = FleetAggregator()
    results: List[ExecutionResult] = []

    if wave_size is not None and wave_size < 1:
        raise ValueError(f"wave_size must be >= 1, got {wave_size}")
    # No store, no cross-execution state: one wave, maximal chunking.
    wave = wave_size or (max(1, workers) if store is not None else executions)
    if store is not None:
        pool.set_evidence_base(store.snapshot())
    try:
        for wave_start in range(0, executions, wave):
            wave_indices = range(
                wave_start, min(wave_start + wave, executions)
            )
            specs = [
                ExecutionSpec(
                    app=app,
                    seed=seed_base + index,
                    index=index,
                    config=config,
                )
                for index in wave_indices
            ]
            outcome = pool.run_wave(specs)
            aggregator.merge_partial(outcome.partial)
            for result in outcome.results:
                results.append(result)
                if not result.ok:
                    aggregator.failed.append(result)
                _record_execution(metrics, result, event_log)
            if store is not None:
                new = store.absorb(
                    signature
                    for result in outcome.results
                    for signature in result.new_evidence
                )
                metrics.counter("evidence_signatures_merged").inc(len(new))
                pool.advance_evidence(new)
    finally:
        pool.close()

    _record_campaign(metrics, pool, aggregator, event_log, app)
    triage_update = None
    if bug_db is not None:
        triage_update = _feed_bug_db(
            bug_db, aggregator, campaign_id, metrics, event_log
        )
    return FleetRunResult(
        app=app,
        executions=executions,
        workers=workers,
        share_evidence=share_evidence,
        seed_base=seed_base,
        results=results,
        aggregator=aggregator,
        metrics=metrics,
        evidence=store.snapshot() if store is not None else frozenset(),
        triage=triage_update,
    )


def _feed_bug_db(
    bug_db: "BugDatabase",
    aggregator: FleetAggregator,
    campaign_id: Optional[str],
    metrics: MetricsRegistry,
    event_log: Optional[JsonlEventLog],
) -> "TriageUpdate":
    """Cluster the campaign's reports into the persistent bug database."""
    # Imported here: triage consumes fleet.aggregate, so a top-level
    # import would be circular.
    from repro.triage.clustering import cluster_reports

    clusters = cluster_reports(aggregator.reports())
    update = bug_db.update(
        clusters,
        campaign_id=campaign_id,
        total_executions=aggregator.executions_ok,
    )
    metrics.counter("triage_clusters").inc(update.clusters)
    metrics.counter("triage_bugs_new").inc(len(update.new))
    metrics.counter("triage_bugs_reproduced").inc(len(update.reproduced))
    metrics.counter("triage_bugs_regressed").inc(len(update.regressed))
    merged = aggregator.unique_reports() - update.clusters
    metrics.counter("triage_signatures_merged").inc(max(0, merged))
    if event_log is not None:
        event_log.emit(
            "triage",
            campaign_id=update.campaign_id,
            seq=update.seq,
            clusters=update.clusters,
            new=list(update.new),
            reproduced=list(update.reproduced),
            regressed=list(update.regressed),
            bugs_total=len(bug_db),
        )
    return update


def _record_execution(
    metrics: MetricsRegistry,
    result: ExecutionResult,
    event_log: Optional[JsonlEventLog],
) -> None:
    metrics.counter("executions_run").inc()
    if not result.ok:
        metrics.counter("executions_failed").inc()
    if result.detected:
        metrics.counter("executions_detected").inc()
    metrics.counter("reports_raised").inc(len(result.reports))
    metrics.counter("watchpoint_arms").inc(result.watched_times)
    metrics.histogram("execution_wall_ms").observe(result.wall_seconds * 1e3)
    metrics.histogram("reports_per_execution").observe(len(result.reports))
    metrics.histogram("allocations_per_execution").observe(result.allocations)
    if event_log is not None:
        event_log.emit(
            "execution",
            app=result.app,
            index=result.index,
            seed=result.seed,
            outcome=result.outcome,
            attempts=result.attempts,
            detected=result.detected,
            detected_by_watchpoint=result.detected_by_watchpoint,
            reports=[r.signature for r in result.reports],
            new_evidence=list(result.new_evidence),
            allocations=result.allocations,
            watched_times=result.watched_times,
            wall_ms=round(result.wall_seconds * 1e3, 3),
            error=result.error,
        )


def _record_campaign(
    metrics: MetricsRegistry,
    pool: FleetPool,
    aggregator: FleetAggregator,
    event_log: Optional[JsonlEventLog],
    app: str,
) -> None:
    metrics.counter("worker_crashes").inc(pool.crashes)
    metrics.counter("worker_timeouts").inc(pool.timeouts)
    metrics.counter("worker_retries").inc(pool.retries)
    metrics.counter("executor_rebuilds").inc(pool.executor_rebuilds)
    metrics.counter("reports_unique").inc(aggregator.unique_reports())
    retry_histogram = metrics.histogram("retry_wall_ms")
    for wall_ms in pool.retry_wall_ms:
        retry_histogram.observe(wall_ms)
    if event_log is None:
        return
    for entry in aggregator.reports():
        event_log.emit(
            "report",
            app=app,
            signature=entry.signature,
            kind=entry.kind,
            count=entry.count,
            executions=entry.executions,
            first_seen=entry.first_seen,
            sources=dict(sorted(entry.sources.items())),
        )
    event_log.emit(
        "campaign",
        app=app,
        executions=aggregator.executions,
        detected=aggregator.executions_detected,
        raw_reports=aggregator.raw_reports,
        unique_reports=aggregator.unique_reports(),
        dedup_ratio=round(aggregator.dedup_ratio, 4),
    )
