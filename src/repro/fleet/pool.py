"""The fleet worker pool.

Fans :class:`ExecutionSpec`s out over a ``ProcessPoolExecutor`` of
independent OS processes — the closest a simulation gets to the paper's
deployment story, where each production process runs its own sampled
CSOD and only reports flow back centrally.  Three failure policies keep
one bad execution from killing a campaign:

* a **per-execution timeout** — a stuck execution is recorded as
  ``timeout`` and its executor is recycled so the remaining specs still
  run;
* **retry-once-on-worker-crash** — a spec whose worker died (or raised)
  is re-executed once, inline in the coordinator, deterministically;
* executions that fail twice come back as failed
  :class:`ExecutionResult`s rather than exceptions.

``workers <= 1`` runs every spec inline with the same bookkeeping, so
serial callers (and single-core machines) share one code path and one
set of semantics with the parallel fleet.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, List, Optional

from repro.core import CSODConfig, CSODRuntime
from repro.core.sampling import context_signature
from repro.fleet.specs import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ExecutionResult,
    ExecutionSpec,
    ReportRecord,
)
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

DEFAULT_TIMEOUT_SECONDS = 60.0


def execute_spec(spec: ExecutionSpec) -> ExecutionResult:
    """Run one simulated execution; the worker-side entry point.

    Evidence flows through the spec/result, never through worker-side
    files: the coordinator owns the store, so two workers can never
    race on a persistence path.
    """
    started = time.perf_counter()
    # Workers must not write evidence files of their own.
    config = spec.config
    if config.persistence_path is not None:
        config = CSODConfig(**{**config.__dict__, "persistence_path": None})
    app = app_for(spec.app)
    process = SimProcess(seed=spec.seed)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=spec.seed)
    if spec.evidence:
        runtime.sampling.preload_known_bad(set(spec.evidence))
    app.run(process)
    runtime.shutdown()
    stats = runtime.stats()
    new_evidence = tuple(
        sorted(
            context_signature(record.context)
            for record in runtime.sampling.records()
            if record.overflow_observed
        )
    )
    reports = [
        ReportRecord(
            signature=report.signature(),
            kind=report.kind,
            source=report.source,
            allocation_context=tuple(
                str(frame) for frame in report.allocation_context.frames
            ),
            access_context=tuple(str(frame) for frame in report.access_frames),
        )
        for report in runtime.reports
    ]
    return ExecutionResult(
        app=spec.app,
        seed=spec.seed,
        index=spec.index,
        outcome=OUTCOME_OK,
        detected=runtime.detected,
        detected_by_watchpoint=runtime.detected_by_watchpoint,
        reports=reports,
        new_evidence=new_evidence,
        allocations=stats.allocations,
        contexts=stats.contexts,
        watched_times=stats.watched_times,
        traps_handled=stats.traps_handled,
        canary_corruptions=stats.canary_corruptions,
        wall_seconds=time.perf_counter() - started,
    )


class FleetPool:
    """Executes specs across worker processes, surviving bad executions."""

    def __init__(
        self,
        workers: int = 1,
        timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
        retry_crashed: bool = True,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.retry_crashed = retry_crashed
        self.crashes = 0
        self.timeouts = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ExecutionSpec]) -> List[ExecutionResult]:
        """Execute every spec; results come back in spec order."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers <= 1:
            return [self._run_inline(spec) for spec in specs]
        return self._run_parallel(specs)

    # ------------------------------------------------------------------
    # Serial path (also the retry path)
    # ------------------------------------------------------------------
    def _run_inline(self, spec: ExecutionSpec, attempts: int = 1) -> ExecutionResult:
        try:
            result = execute_spec(spec)
            result.attempts = attempts
            return result
        except Exception as exc:  # noqa: BLE001 — one bad execution must not
            # kill the campaign, whatever it raised.
            self.crashes += 1
            if self.retry_crashed and attempts == 1:
                self.retries += 1
                return self._run_inline(spec, attempts=2)
            return self._failed(spec, OUTCOME_CRASH, attempts, _describe(exc))

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, specs: List[ExecutionSpec]) -> List[ExecutionResult]:
        # Warm the app cache before forking so every worker inherits the
        # same interned call sites (and nobody rebuilds a 57k-event
        # schedule per process).
        for name in sorted({spec.app for spec in specs}):
            try:
                app_for(name)
            except Exception:  # noqa: BLE001 — a bad app name fails its
                # own executions (crash + retry), not the whole campaign.
                pass
        results: dict = {}
        pending = specs
        executor = ProcessPoolExecutor(max_workers=self.workers)
        try:
            futures = {spec.index: executor.submit(execute_spec, spec) for spec in pending}
            broken = False
            for spec in pending:
                future = futures[spec.index]
                try:
                    result = future.result(timeout=self.timeout_seconds)
                    result.attempts = 1
                    results[spec.index] = result
                except FutureTimeout:
                    self.timeouts += 1
                    future.cancel()
                    results[spec.index] = self._failed(
                        spec,
                        OUTCOME_TIMEOUT,
                        attempts=1,
                        error=f"execution exceeded {self.timeout_seconds}s",
                    )
                except BrokenProcessPool:
                    broken = True
                    break
                except Exception as exc:  # noqa: BLE001 — worker raised
                    self.crashes += 1
                    if self.retry_crashed:
                        self.retries += 1
                        results[spec.index] = self._run_inline(spec, attempts=2)
                    else:
                        results[spec.index] = self._failed(
                            spec, OUTCOME_CRASH, 1, _describe(exc)
                        )
            if broken:
                # The pool died (a worker was killed outright); every
                # unfinished spec gets one deterministic inline retry.
                for spec in pending:
                    if spec.index not in results:
                        self.crashes += 1
                        if self.retry_crashed:
                            self.retries += 1
                            results[spec.index] = self._run_inline(spec, attempts=2)
                        else:
                            results[spec.index] = self._failed(
                                spec, OUTCOME_CRASH, 1, "worker pool broke"
                            )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return [results[spec.index] for spec in specs]

    @staticmethod
    def _failed(
        spec: ExecutionSpec, outcome: str, attempts: int, error: str
    ) -> ExecutionResult:
        return ExecutionResult(
            app=spec.app,
            seed=spec.seed,
            index=spec.index,
            outcome=outcome,
            attempts=attempts,
            error=error,
        )


def _describe(exc: Exception) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
