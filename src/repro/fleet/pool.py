"""The fleet worker pool.

Fans :class:`ExecutionSpec`s out over a ``ProcessPoolExecutor`` of
independent OS processes — the closest a simulation gets to the paper's
deployment story, where each production process runs its own sampled
CSOD and only reports flow back centrally.  Three failure policies keep
one bad execution from killing a campaign:

* a **per-execution timeout** — a stuck execution is recorded as
  ``timeout`` and its executor is recycled so the remaining specs still
  run;
* **retry-once-on-worker-crash** — a spec whose worker died (or raised)
  is re-executed once, inline in the coordinator, deterministically;
* executions that fail twice come back as failed
  :class:`ExecutionResult`s rather than exceptions.

``workers <= 1`` runs every spec inline with the same bookkeeping, so
serial callers (and single-core machines) share one code path and one
set of semantics with the parallel fleet.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, List, Optional

from repro.core import CSODConfig, CSODRuntime
from repro.core.sampling import context_signature
from repro.fleet.specs import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ExecutionResult,
    ExecutionSpec,
    ReportRecord,
)
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

DEFAULT_TIMEOUT_SECONDS = 60.0


def execute_spec(spec: ExecutionSpec) -> ExecutionResult:
    """Run one simulated execution; the worker-side entry point.

    Evidence flows through the spec/result, never through worker-side
    files: the coordinator owns the store, so two workers can never
    race on a persistence path.
    """
    started = time.perf_counter()
    # Workers must not write evidence files of their own.
    config = spec.config
    if config.persistence_path is not None:
        # dataclasses.replace keeps the config's own type and re-runs
        # __init__, so configs with derived (non-init) fields survive.
        config = dataclasses.replace(config, persistence_path=None)
    app = app_for(spec.app)
    process = SimProcess(seed=spec.seed)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=spec.seed)
    if spec.evidence:
        runtime.sampling.preload_known_bad(set(spec.evidence))
    app.run(process)
    runtime.shutdown()
    stats = runtime.stats()
    new_evidence = tuple(
        sorted(
            context_signature(record.context)
            for record in runtime.sampling.records()
            if record.overflow_observed
        )
    )
    reports = [
        ReportRecord(
            signature=report.signature(),
            kind=report.kind,
            source=report.source,
            allocation_context=tuple(
                str(frame) for frame in report.allocation_context.frames
            ),
            access_context=tuple(str(frame) for frame in report.access_frames),
        )
        for report in runtime.reports
    ]
    return ExecutionResult(
        app=spec.app,
        seed=spec.seed,
        index=spec.index,
        outcome=OUTCOME_OK,
        detected=runtime.detected,
        detected_by_watchpoint=runtime.detected_by_watchpoint,
        reports=reports,
        new_evidence=new_evidence,
        allocations=stats.allocations,
        contexts=stats.contexts,
        watched_times=stats.watched_times,
        traps_handled=stats.traps_handled,
        canary_corruptions=stats.canary_corruptions,
        wall_seconds=time.perf_counter() - started,
    )


class FleetPool:
    """Executes specs across worker processes, surviving bad executions."""

    def __init__(
        self,
        workers: int = 1,
        timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
        retry_crashed: bool = True,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.retry_crashed = retry_crashed
        self.crashes = 0
        self.timeouts = 0
        self.retries = 0
        self.executor_rebuilds = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ExecutionSpec]) -> List[ExecutionResult]:
        """Execute every spec; results come back in spec order."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers <= 1:
            return [self._run_inline(spec) for spec in specs]
        return self._run_parallel(specs)

    # ------------------------------------------------------------------
    # Serial path (also the retry path)
    # ------------------------------------------------------------------
    def _run_inline(self, spec: ExecutionSpec, attempts: int = 1) -> ExecutionResult:
        try:
            result = execute_spec(spec)
            result.attempts = attempts
            return result
        except Exception as exc:  # noqa: BLE001 — one bad execution must not
            # kill the campaign, whatever it raised.
            self.crashes += 1
            if self.retry_crashed and attempts == 1:
                self.retries += 1
                return self._run_inline(spec, attempts=2)
            return self._failed(spec, OUTCOME_CRASH, attempts, _describe(exc))

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, specs: List[ExecutionSpec]) -> List[ExecutionResult]:
        # Warm the app cache before forking so every worker inherits the
        # same interned call sites (and nobody rebuilds a 57k-event
        # schedule per process).
        for name in sorted({spec.app for spec in specs}):
            try:
                app_for(name)
            except Exception:  # noqa: BLE001 — a bad app name fails its
                # own executions (crash + retry), not the whole campaign.
                pass
        results: dict = {}
        # Submission is a sliding window of ``workers`` specs, so every
        # submitted spec starts executing immediately and its deadline —
        # measured from *submission*, not from when the coordinator gets
        # around to waiting on it — bounds its own wall time.  The old
        # implementation submitted everything up front and measured each
        # timeout from the start of its wait, which gave later specs an
        # effectively unbounded allowance (and ``future.cancel()`` on a
        # running future is a no-op, so a hung worker lingered forever).
        waiting: List[ExecutionSpec] = list(specs)
        in_flight: List[tuple] = []  # (spec, future, deadline) in submit order
        executor = ProcessPoolExecutor(max_workers=self.workers)
        broken = False
        try:
            while waiting or in_flight:
                while waiting and len(in_flight) < self.workers:
                    spec = waiting.pop(0)
                    deadline = (
                        time.monotonic() + self.timeout_seconds
                        if self.timeout_seconds is not None
                        else None
                    )
                    in_flight.append(
                        (spec, executor.submit(execute_spec, spec), deadline)
                    )
                spec, future, deadline = in_flight.pop(0)
                try:
                    remaining = (
                        max(0.0, deadline - time.monotonic())
                        if deadline is not None
                        else None
                    )
                    result = future.result(timeout=remaining)
                    result.attempts = 1
                    results[spec.index] = result
                except FutureTimeout:
                    self.timeouts += 1
                    results[spec.index] = self._failed(
                        spec,
                        OUTCOME_TIMEOUT,
                        attempts=1,
                        error=f"execution exceeded {self.timeout_seconds}s",
                    )
                    # A running future cannot be cancelled: the hung
                    # worker must be killed and the pool rebuilt.  The
                    # executions lost with the old pool restart on the
                    # new one — execute_spec is deterministic per seed,
                    # so re-running them changes nothing.
                    executor = self._rebuild(executor)
                    waiting = [entry[0] for entry in in_flight] + waiting
                    in_flight = []
                except BrokenProcessPool:
                    broken = True
                    break
                except Exception as exc:  # noqa: BLE001 — worker raised
                    self.crashes += 1
                    if self.retry_crashed:
                        self.retries += 1
                        results[spec.index] = self._run_inline(spec, attempts=2)
                    else:
                        results[spec.index] = self._failed(
                            spec, OUTCOME_CRASH, 1, _describe(exc)
                        )
            if broken:
                # The pool died (a worker was killed outright); every
                # submitted-but-unfinished spec gets one deterministic
                # inline retry, and never-submitted specs run inline.
                for spec, _, _ in in_flight:
                    self.crashes += 1
                    if self.retry_crashed:
                        self.retries += 1
                        results[spec.index] = self._run_inline(spec, attempts=2)
                    else:
                        results[spec.index] = self._failed(
                            spec, OUTCOME_CRASH, 1, "worker pool broke"
                        )
                for spec in waiting:
                    results[spec.index] = self._run_inline(spec)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return [results[spec.index] for spec in specs]

    def _rebuild(self, executor: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Kill a pool with a hung worker and hand back a fresh one."""
        self.executor_rebuilds += 1
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers are fine
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _failed(
        spec: ExecutionSpec, outcome: str, attempts: int, error: str
    ) -> ExecutionResult:
        return ExecutionResult(
            app=spec.app,
            seed=spec.seed,
            index=spec.index,
            outcome=outcome,
            attempts=attempts,
            error=error,
        )


def _describe(exc: Exception) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
