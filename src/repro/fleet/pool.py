"""The fleet worker pool.

Fans :class:`ExecutionSpec`s out over a ``ProcessPoolExecutor`` of
independent OS processes — the closest a simulation gets to the paper's
deployment story, where each production process runs its own sampled
CSOD and only reports flow back centrally.

The pool is built for campaign throughput:

* **Persistent workers** — one executor per :class:`FleetPool`, created
  lazily on the first parallel wave and reused across waves.  The
  worker initializer pre-imports the runtime (this module's imports)
  and pre-warms the per-app schedule/call-site caches once per process,
  instead of once per execution.  The executor is rebuilt only when a
  worker hangs past its deadline or the pool breaks
  (``executor_rebuilds`` counts those, and only those).
* **Chunked dispatch** — specs are submitted in :class:`WorkChunk`s
  (``chunk_size`` configurable, default ``ceil(wave / workers)``), so
  one pickle/IPC round trip and one config transfer amortise over many
  executions; inside a chunk the worker runs serially and returns one
  batched :class:`ChunkOutcome`.
* **Delta evidence** — workers hold the evidence snapshot from campaign
  start (:meth:`FleetPool.set_evidence_base`, shipped once via the
  initializer); each chunk carries only the signatures merged since
  (:meth:`FleetPool.advance_evidence`), reconstructed worker-side as
  ``base | delta`` — a set, so detection behaviour is byte-for-byte the
  same as shipping the full snapshot.
* **Mergeable partial aggregation** — the worker folds its chunk into a
  :class:`PartialAggregate` and ships signatures, not frame strings
  (those travel once per novel signature); the coordinator rehydrates
  full :class:`ExecutionResult`s from its context registry.

Failure policy, per execution:

* a **per-execution timeout** — a chunk's deadline is
  ``timeout × len(chunk)``; when it fires the chunk's specs are re-run
  as single-spec chunks on a rebuilt executor so the hung spec times
  out *alone* and is recorded as ``timeout``, while its innocent
  chunk-mates complete.  A confirmed-hung spec (a re-run single that
  hangs again) just costs the pool one worker of capacity instead of a
  second rebuild.
* **retry-once-on-crash** — a spec that raises is retried *inside its
  worker* (the coordinator never blocks; other chunks keep executing),
  and a spec whose worker process died is resubmitted to the pool as a
  second-attempt chunk.
* Executions that fail twice come back as failed
  :class:`ExecutionResult`s rather than exceptions.

``workers <= 1`` runs every chunk inline through the *same* chunk
executor, so serial callers share one code path and one set of
semantics with the parallel fleet.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core import CSODConfig, CSODRuntime
from repro.core.sampling import context_signature
from repro.errors import CampaignCancelled, InvalidFreeError
from repro.fleet.aggregate import PartialAggregate
from repro.fleet.shm import (
    WIRE_PICKLE,
    WIRE_SHM,
    WIRES,
    BlobHandle,
    SegmentFull,
    ShmDataPlane,
    WorkerPlane,
    shm_supported,
)
from repro.fleet.specs import (
    OUTCOME_CRASH,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    ContextTable,
    ExecutionResult,
    ExecutionSpec,
    LeanExecutionResult,
    ReportRecord,
    WorkChunk,
    lean_from,
)
from repro.fleet.wire import decode_chunk_outcome, encode_chunk_outcome
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

DEFAULT_TIMEOUT_SECONDS = 60.0

# The pool-level default data plane.  "shm" is the fast path: shared
# evidence/context segments + binary result rows; "pickle" is the
# fully-pickled legacy plane, kept as a config fallback (and used
# automatically wherever shared memory is unsupported).
DEFAULT_WIRE = WIRE_SHM


# ----------------------------------------------------------------------
# Worker-side campaign state
# ----------------------------------------------------------------------
# One campaign per pool, one pool per executor: the initializer stamps
# this once per worker process (and inherits pre-warmed app caches on
# fork platforms for free).
_WORKER_CAMPAIGN: Dict[str, object] = {
    "base_evidence": frozenset(),
    "shipped": set(),
    "plane": None,
    "plane_error": None,
}


def _init_worker(
    apps: Tuple[str, ...],
    base_evidence: Tuple[str, ...],
    shm_names: Optional[dict] = None,
) -> None:
    """Per-process warm-up: campaign evidence base + app caches.

    With ``shm_names`` the worker also attaches the shared data plane:
    the evidence and context-registry segments, plus one result ring
    claimed atomically (first worker to create the claim segment owns
    the ring).  Attach failures never break worker start-up — they are
    remembered and raised by the first shm chunk instead, which rides
    the normal crash/retry path.
    """
    _WORKER_CAMPAIGN["base_evidence"] = frozenset(base_evidence)
    _WORKER_CAMPAIGN["shipped"] = set()
    _WORKER_CAMPAIGN["plane"] = None
    _WORKER_CAMPAIGN["plane_error"] = None
    if shm_names is not None:
        try:
            _WORKER_CAMPAIGN["plane"] = WorkerPlane(shm_names)
        except Exception as exc:  # noqa: BLE001 — see docstring
            _WORKER_CAMPAIGN["plane_error"] = _describe(exc)
    for name in apps:
        try:
            app_for(name)
        except Exception:  # noqa: BLE001 — a bad app name fails its own
            # executions (crash + retry), not worker start-up.
            pass


def execute_spec(spec: ExecutionSpec) -> ExecutionResult:
    """Run one simulated execution; the single-spec entry point.

    Evidence flows through the spec/result, never through worker-side
    files: the coordinator owns the store, so two workers can never
    race on a persistence path.
    """
    return _execute_one(spec, frozenset())


def _execute_one(
    spec: ExecutionSpec, chunk_evidence: FrozenSet[str]
) -> ExecutionResult:
    started = time.perf_counter()
    # Workers must not write evidence files of their own.
    config = spec.config
    if config.persistence_path is not None:
        # dataclasses.replace keeps the config's own type and re-runs
        # __init__, so configs with derived (non-init) fields survive.
        config = dataclasses.replace(config, persistence_path=None)
    app = app_for(spec.app, spec.scale)
    process = SimProcess(seed=spec.seed)
    runtime = CSODRuntime(process.machine, process.heap, config, seed=spec.seed)
    evidence = set(spec.evidence) if spec.evidence else set(chunk_evidence)
    if evidence:
        runtime.sampling.preload_known_bad(evidence)
    try:
        app.run(process)
    except InvalidFreeError as exc:
        # The allocator aborted on an invalid free (a double-free
        # workload).  That is the production crash; whether it becomes
        # a *report* depends on the arm: with evidence mode the
        # surviving object header diagnoses the double free, without
        # it the abort stays unattributed (no report, normal outcome).
        runtime.diagnose_invalid_free(process.main_thread, exc.address)
    runtime.shutdown()
    stats = runtime.stats()
    new_evidence = tuple(
        sorted(
            context_signature(record.context)
            for record in runtime.sampling.records()
            if record.overflow_observed
        )
    )
    reports = [
        ReportRecord(
            signature=report.signature(),
            kind=report.kind,
            source=report.source,
            allocation_context=tuple(
                str(frame) for frame in report.allocation_context.frames
            ),
            access_context=tuple(str(frame) for frame in report.access_frames),
        )
        for report in runtime.reports
    ]
    return ExecutionResult(
        app=spec.app,
        seed=spec.seed,
        index=spec.index,
        outcome=OUTCOME_OK,
        detected=runtime.detected,
        detected_by_watchpoint=runtime.detected_by_watchpoint,
        reports=reports,
        new_evidence=new_evidence,
        allocations=stats.allocations,
        contexts=stats.contexts,
        watched_times=stats.watched_times,
        traps_handled=stats.traps_handled,
        canary_corruptions=stats.canary_corruptions,
        wall_seconds=time.perf_counter() - started,
    )


@dataclass
class ChunkOutcome:
    """One worker's batched answer for one :class:`WorkChunk`."""

    results: List[LeanExecutionResult] = field(default_factory=list)
    partial: PartialAggregate = field(default_factory=PartialAggregate)
    crashes: int = 0
    retries: int = 0


def run_chunk(
    specs: Tuple[ExecutionSpec, ...],
    evidence: FrozenSet[str],
    shipped: Set[str],
    retry_crashed: bool = True,
    base_attempts: int = 1,
    should_stop: Optional[Callable[[], bool]] = None,
) -> ChunkOutcome:
    """Run a chunk of specs serially; the shared serial/worker core.

    ``shipped`` is the caller's per-campaign memory of which report
    signatures have already had their frame strings transferred —
    contexts for those are stripped from the outcome (the coordinator
    keeps a registry), so steady-state result payloads carry counters
    and signatures only.

    ``should_stop`` gives the serial/inline path sub-wave cancellation:
    it is polled between specs and raises :class:`CampaignCancelled`
    mid-chunk.  Worker processes never pass it — a parallel wave is
    cancelled coordinator-side by terminating the executor instead.
    """
    outcome = ChunkOutcome()
    for spec in specs:
        if should_stop is not None and should_stop():
            raise CampaignCancelled(
                f"chunk stopped after {len(outcome.results)}/{len(specs)} "
                f"executions"
            )
        retry_wall_ms = 0.0
        try:
            result = _execute_one(spec, evidence)
            result.attempts = base_attempts
        except Exception as first_exc:  # noqa: BLE001 — one bad execution
            # must not kill the chunk, whatever it raised.
            outcome.crashes += 1
            if retry_crashed and base_attempts == 1:
                outcome.retries += 1
                retry_started = time.perf_counter()
                try:
                    result = _execute_one(spec, evidence)
                    result.attempts = 2
                except Exception as second_exc:  # noqa: BLE001
                    outcome.crashes += 1
                    result = _failed_result(
                        spec, OUTCOME_CRASH, 2, _describe(second_exc)
                    )
                retry_wall_ms = (time.perf_counter() - retry_started) * 1e3
            else:
                result = _failed_result(
                    spec, OUTCOME_CRASH, base_attempts, _describe(first_exc)
                )
        outcome.partial.observe(result)
        outcome.results.append(lean_from(result, retry_wall_ms=retry_wall_ms))
    # Ship frame strings once per signature per campaign per worker.
    for signature in list(outcome.partial.contexts):
        if signature in shipped:
            del outcome.partial.contexts[signature]
        else:
            shipped.add(signature)
    return outcome


def _execute_chunk(chunk: WorkChunk):
    """The worker-side entry point for both wires.

    ``wire="pickle"``: reconstruct evidence as ``base | delta`` and
    return the pickled :class:`ChunkOutcome`, exactly as always.

    ``wire="shm"``: read evidence straight out of the shared segment
    (up to the chunk's published slot count — the same set the delta
    would have reconstructed, so detection is byte-identical), fold the
    fleet-wide context registry into the shipped-set, and answer with a
    :class:`BlobHandle` pointing at the binary-encoded outcome in this
    worker's result ring (or carrying it inline when the ring is
    unavailable).
    """
    shipped: Set[str] = _WORKER_CAMPAIGN["shipped"]
    if chunk.wire == WIRE_SHM:
        plane: Optional[WorkerPlane] = _WORKER_CAMPAIGN.get("plane")
        if plane is None:
            raise RuntimeError(
                "shm data plane unavailable in worker: "
                f"{_WORKER_CAMPAIGN.get('plane_error') or 'not attached'}"
            )
        evidence = plane.evidence_at(chunk.evidence_slots)
        plane.refresh_shipped(shipped)
        outcome = run_chunk(
            chunk.specs,
            evidence,
            shipped,
            retry_crashed=chunk.retry_crashed,
            base_attempts=chunk.attempts,
        )
        payload = encode_chunk_outcome(
            outcome.results,
            outcome.partial.contexts,
            outcome.crashes,
            outcome.retries,
        )
        return plane.ship(payload)
    base = _WORKER_CAMPAIGN["base_evidence"]
    evidence = frozenset(base | set(chunk.evidence_delta))
    return run_chunk(
        chunk.specs,
        evidence,
        shipped,
        retry_crashed=chunk.retry_crashed,
        base_attempts=chunk.attempts,
    )


def _failed_result(
    spec: ExecutionSpec, outcome: str, attempts: int, error: str
) -> ExecutionResult:
    return ExecutionResult(
        app=spec.app,
        seed=spec.seed,
        index=spec.index,
        outcome=outcome,
        attempts=attempts,
        error=error,
    )


def _describe(exc: Exception) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class WaveResult:
    """Everything one wave produced, pre-folded."""

    results: List[ExecutionResult]
    partial: PartialAggregate


@dataclass
class _Pending:
    """A dispatchable unit of work, coordinator-side."""

    specs: Tuple[ExecutionSpec, ...]
    attempts: int = 1
    # True when these specs were salvaged from a timed-out chunk: one
    # of them is known to hang, so a single-spec timeout here is
    # attributed without another rebuild.
    suspect: bool = False


class FleetPool:
    """Executes specs across persistent worker processes.

    Create once per campaign; ``run``/``run_wave`` may be called many
    times (one per wave) against the same executor.  Call :meth:`close`
    (or use as a context manager) when the campaign ends.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS,
        retry_crashed: bool = True,
        chunk_size: Optional[int] = None,
        wire: Optional[str] = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if wire is None:
            wire = DEFAULT_WIRE
        if wire not in WIRES:
            raise ValueError(
                f"wire must be one of {list(WIRES)}, got {wire!r}"
            )
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.retry_crashed = retry_crashed
        self.chunk_size = chunk_size
        self.wire = wire
        # The wire actually driving chunks right now: downgrades to
        # "pickle" (per-campaign) if shared memory is unsupported, a
        # segment cannot be created, or the evidence segment fills.
        self._wire_active = (
            wire if wire == WIRE_PICKLE or shm_supported() else WIRE_PICKLE
        )
        self.wire_downgrades = 0 if self._wire_active == wire else 1
        self._plane: Optional[ShmDataPlane] = None
        # Signatures already published to the shared context registry.
        self._registry_shipped: Set[str] = set()
        self._registry_full = False
        self.crashes = 0
        self.timeouts = 0
        self.retries = 0
        self.executor_rebuilds = 0
        # Wall-clock of every crash retry (worker- or pool-side), ms.
        self.retry_wall_ms: List[float] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._capacity = max(1, workers)
        self._hung_workers = 0
        self._apps: Tuple[str, ...] = ()
        self._evidence_base: FrozenSet[str] = frozenset()
        self._evidence_delta: FrozenSet[str] = frozenset()
        self._evidence_epoch = 0
        self._context_registry: ContextTable = {}
        # The serial path's counterpart of a worker's shipped-set.
        self._inline_shipped: Set[str] = set()
        # Cooperative cancellation: set from any thread; the dispatch
        # loop notices within one poll slice, terminates the workers,
        # and raises CampaignCancelled.
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def request_stop(self) -> None:
        """Ask the pool to abandon in-flight work at the next boundary.

        Safe to call from any thread (a service cancellation handler, a
        signal handler).  The wave currently running raises
        :class:`CampaignCancelled` after terminating worker processes;
        later ``run_wave`` calls raise immediately.
        """
        self._stop.set()

    def _check_stop(self) -> None:
        if self._stop.is_set():
            self._dispose()
            raise CampaignCancelled("fleet pool stop requested")

    # ------------------------------------------------------------------
    # Evidence broadcast (delta protocol)
    # ------------------------------------------------------------------
    @property
    def evidence_epoch(self) -> int:
        return self._evidence_epoch

    @property
    def active_wire(self) -> str:
        """The wire currently carrying chunks ("shm" may downgrade)."""
        return self._wire_active

    def set_evidence_base(self, signatures: Iterable[str]) -> None:
        """Install the campaign-start snapshot (shipped to workers once).

        Must happen before the first parallel wave — the base rides in
        the executor initializer, so changing it afterwards would
        desynchronise coordinator and workers.
        """
        if self._executor is not None:
            raise RuntimeError(
                "set_evidence_base() must be called before the first wave; "
                "use advance_evidence() for signatures merged mid-campaign"
            )
        self._evidence_base = frozenset(signatures)

    def advance_evidence(self, new_signatures: Iterable[str]) -> int:
        """Broadcast newly merged signatures; returns the new epoch.

        Only genuinely new signatures advance the epoch — a wave that
        merged nothing leaves epoch and delta untouched, so chunk
        payloads stay identical and workers skip nothing.
        """
        new = frozenset(new_signatures) - self._evidence_base - self._evidence_delta
        if new:
            self._evidence_delta |= new
            self._evidence_epoch += 1
            if self._plane is not None and self._wire_active == WIRE_SHM:
                try:
                    self._plane.evidence_append(
                        sorted(new), self._evidence_epoch
                    )
                except SegmentFull:
                    # The segment is sized for far more evidence than a
                    # campaign produces, but full is full: later chunks
                    # ride the pickle wire (workers hold base from the
                    # initializer, the chunk carries the delta) — same
                    # evidence set, so detection is unchanged.
                    self._wire_active = WIRE_PICKLE
                    self.wire_downgrades += 1
        return self._evidence_epoch

    def _full_evidence(self) -> FrozenSet[str]:
        return self._evidence_base | self._evidence_delta

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ExecutionSpec]) -> List[ExecutionResult]:
        """Execute every spec; results come back in spec order."""
        return self.run_wave(specs).results

    def run_wave(self, specs: Iterable[ExecutionSpec]) -> WaveResult:
        """Execute one wave; results in spec order plus their fold."""
        specs = list(specs)
        self._check_stop()
        if not specs:
            return WaveResult([], PartialAggregate())
        if self.workers <= 1:
            outcome = run_chunk(
                tuple(specs),
                self._full_evidence(),
                self._inline_shipped,
                retry_crashed=self.retry_crashed,
                should_stop=self._stop.is_set,
            )
            self.crashes += outcome.crashes
            self.retries += outcome.retries
            partial = PartialAggregate()
            results: Dict[int, ExecutionResult] = {}
            self._ingest(outcome, results, partial)
            return WaveResult([results[s.index] for s in specs], partial)
        return self._run_parallel(specs)

    def close(self) -> None:
        """Tear down the executor AND unlink every shm segment.

        Idempotent.  This is the segment-lifecycle boundary: normal
        completion, cancellation (:func:`run_fleet` always finishes
        with ``close()``), and abandoned pools (via the plane's
        pid-guarded GC finalizer) all funnel through here, so no
        ``/dev/shm`` name outlives the campaign.
        """
        self._dispose()
        if self._plane is not None:
            self._plane.unlink()
            self._plane = None
            self._registry_shipped = set()
            self._registry_full = False

    def __enter__(self) -> "FleetPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, specs: List[ExecutionSpec]) -> WaveResult:
        if self._wire_active == WIRE_SHM and self._plane is None:
            try:
                self._plane = ShmDataPlane.create(
                    rings=max(1, self.workers),
                    evidence=sorted(self._full_evidence()),
                )
            except Exception:  # noqa: BLE001 — any creation failure
                # (ENOSPC on /dev/shm, oversized base evidence, …)
                # downgrades the whole campaign to the pickle wire.
                self._wire_active = WIRE_PICKLE
                self.wire_downgrades += 1
        self._apps = tuple(
            sorted(set(self._apps) | {spec.app for spec in specs})
        )
        # Warm the app cache before forking so every worker inherits
        # the same interned call sites (and nobody rebuilds a 57k-event
        # schedule per process); spawn platforms re-warm in the
        # initializer instead.
        for name in self._apps:
            try:
                app_for(name)
            except Exception:  # noqa: BLE001 — a bad app name fails its
                # own executions (crash + retry), not the whole campaign.
                pass
        size = self.chunk_size or max(1, math.ceil(len(specs) / self.workers))
        waiting: Deque[_Pending] = deque(
            _Pending(specs=tuple(specs[i : i + size]))
            for i in range(0, len(specs), size)
        )
        in_flight: Deque[tuple] = deque()  # (_Pending, future, deadline)
        results: Dict[int, ExecutionResult] = {}
        partial = PartialAggregate()
        executor = self._ensure_executor()
        try:
            while waiting or in_flight:
                self._check_stop()
                while waiting and len(in_flight) < self._capacity:
                    pending = waiting.popleft()
                    chunk = self._build_chunk(pending)
                    deadline = (
                        time.monotonic()
                        + self.timeout_seconds * len(pending.specs)
                        if self.timeout_seconds is not None
                        else None
                    )
                    in_flight.append(
                        (pending, executor.submit(_execute_chunk, chunk), deadline)
                    )
                pending, future, deadline = in_flight.popleft()
                try:
                    outcome = self._materialize(
                        self._await_result(future, deadline)
                    )
                    self.crashes += outcome.crashes
                    self.retries += outcome.retries
                    self._ingest(outcome, results, partial)
                except FutureTimeout:
                    executor = self._on_timeout(
                        pending, in_flight, waiting, results, partial, executor
                    )
                except BrokenProcessPool:
                    # Every in-flight future died with the pool: drain them
                    # all before rebuilding once, then resubmit — the
                    # coordinator never falls back to executing inline.
                    dead = [pending] + [entry[0] for entry in in_flight]
                    in_flight.clear()
                    executor = self._rebuild(executor)
                    for lost in dead:
                        self._requeue_crashed(lost, waiting, results, partial)
                except (CampaignCancelled, KeyboardInterrupt):
                    raise
                except Exception as exc:  # noqa: BLE001 — dispatch/pickling
                    # failure for this chunk; its specs get one pool retry.
                    self._requeue_crashed(
                        pending, waiting, results, partial, _describe(exc)
                    )
        except (CampaignCancelled, KeyboardInterrupt):
            # Stop request or Ctrl-C mid-wave: the executor (and any
            # worker process still running a chunk) must not outlive
            # the wave — terminate everything before unwinding.
            self._dispose()
            raise
        if self._hung_workers:
            # Confirmed-hung workers are still burning a pool slot;
            # disposing now frees them without counting as a rebuild —
            # the next wave lazily builds a fresh executor.
            self._dispose()
        return WaveResult([results[spec.index] for spec in specs], partial)

    def _build_chunk(self, pending: _Pending) -> WorkChunk:
        """One dispatchable chunk on whichever wire is active.

        Evidence only advances between waves, so every chunk built
        during a wave (including timeout/crash requeues) sees the same
        epoch, slot count, and delta — worker scheduling cannot leak
        into detection outcomes on either wire.
        """
        if self._wire_active == WIRE_SHM and self._plane is not None:
            return WorkChunk(
                specs=pending.specs,
                evidence_epoch=self._evidence_epoch,
                attempts=pending.attempts,
                retry_crashed=self.retry_crashed,
                wire=WIRE_SHM,
                evidence_slots=self._plane.evidence_slots,
            )
        return WorkChunk(
            specs=pending.specs,
            evidence_epoch=self._evidence_epoch,
            evidence_delta=tuple(sorted(self._evidence_delta)),
            attempts=pending.attempts,
            retry_crashed=self.retry_crashed,
        )

    def _materialize(self, raw) -> ChunkOutcome:
        """Turn a worker's answer into a ChunkOutcome, either wire.

        Pickle chunks already arrive as outcomes.  Shm chunks arrive as
        a :class:`BlobHandle`; the bytes are fetched from the worker's
        ring (verified by magic/length/sequence), decoded, and the
        partial aggregate refolded from the decoded rows — associative,
        so downstream merging is byte-identical to the pickle wire.  A
        fetch/decode failure raises and rides the existing
        dispatch-failure path (the chunk's specs get one pool retry).
        """
        if isinstance(raw, ChunkOutcome):
            return raw
        if not isinstance(raw, BlobHandle):
            raise TypeError(
                f"worker answered with {type(raw).__name__}, expected a "
                f"ChunkOutcome or BlobHandle"
            )
        if self._plane is None:
            raise RuntimeError("blob handle arrived with no shm plane attached")
        payload = self._plane.fetch(raw)
        leans, contexts, crashes, retries = decode_chunk_outcome(payload)
        for signature, frames in contexts.items():
            self._context_registry.setdefault(signature, frames)
        partial = PartialAggregate.refold(
            lean.hydrate(self._context_registry) for lean in leans
        )
        return ChunkOutcome(
            results=leans, partial=partial, crashes=crashes, retries=retries
        )

    # Poll slice while waiting on a chunk future: long enough to stay
    # off the hot path, short enough that a stop request (cancel,
    # Ctrl-C relayed from another thread) interrupts a wave promptly.
    _WAIT_SLICE_SECONDS = 0.05

    def _await_result(self, future, deadline: Optional[float]) -> ChunkOutcome:
        """Wait for one chunk, honouring both deadline and stop requests.

        Equivalent to ``future.result(timeout=remaining)`` except the
        wait is sliced so :meth:`request_stop` is noticed within
        ``_WAIT_SLICE_SECONDS`` instead of after the full chunk deadline
        (which defaults to a minute per spec).  Raises ``FutureTimeout``
        exactly when the single blocking wait would have.
        """
        while True:
            if self._stop.is_set():
                raise CampaignCancelled("fleet pool stop requested")
            wait = self._WAIT_SLICE_SECONDS
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return future.result(timeout=0)
                wait = min(wait, remaining)
            try:
                return future.result(timeout=wait)
            except FutureTimeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                continue

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _on_timeout(
        self,
        pending: _Pending,
        in_flight: Deque[tuple],
        waiting: Deque[_Pending],
        results: Dict[int, ExecutionResult],
        partial: PartialAggregate,
        executor: ProcessPoolExecutor,
    ) -> ProcessPoolExecutor:
        if len(pending.specs) == 1:
            # Exact attribution: this spec hung.
            spec = pending.specs[0]
            self.timeouts += 1
            result = _failed_result(
                spec,
                OUTCOME_TIMEOUT,
                attempts=pending.attempts,
                error=f"execution exceeded {self.timeout_seconds}s",
            )
            results[spec.index] = result
            partial.observe(result)
            if pending.suspect:
                # Known hang, already paid for one rebuild: writing off
                # the worker it wedged is cheaper than killing the pool
                # again.  Capacity shrinks; a rebuild only happens if
                # every worker ends up wedged.
                self._hung_workers += 1
                self._capacity = max(0, self._capacity - 1)
                if self._capacity > 0:
                    return executor
            return self._requeue_in_flight(in_flight, waiting, executor)
        # A multi-spec chunk timed out: some spec in it hung, but which
        # one is unknowable without finishing — so the chunk's specs are
        # re-run as single-spec chunks (marked suspect) on a rebuilt
        # executor.  The hung one times out alone and is attributed;
        # its chunk-mates complete.  Deterministic re-execution makes
        # the re-run free of side effects.
        for spec in reversed(pending.specs):
            waiting.appendleft(
                _Pending(specs=(spec,), attempts=pending.attempts, suspect=True)
            )
        return self._requeue_in_flight(in_flight, waiting, executor)

    def _requeue_in_flight(
        self,
        in_flight: Deque[tuple],
        waiting: Deque[_Pending],
        executor: ProcessPoolExecutor,
    ) -> ProcessPoolExecutor:
        """Rebuild the executor; in-flight chunks ride the new one."""
        for entry in reversed(in_flight):
            waiting.appendleft(entry[0])
        in_flight.clear()
        return self._rebuild(executor)

    def _requeue_crashed(
        self,
        pending: _Pending,
        waiting: Deque[_Pending],
        results: Dict[int, ExecutionResult],
        partial: PartialAggregate,
        error: str = "worker pool broke",
    ) -> None:
        """Resubmit a crashed chunk's specs to the pool (never inline)."""
        for spec in pending.specs:
            self.crashes += 1
            if self.retry_crashed and pending.attempts == 1:
                self.retries += 1
                waiting.append(_Pending(specs=(spec,), attempts=2))
            else:
                result = _failed_result(
                    spec, OUTCOME_CRASH, pending.attempts, error
                )
                results[spec.index] = result
                partial.observe(result)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _ingest(
        self,
        outcome: ChunkOutcome,
        results: Dict[int, ExecutionResult],
        partial: PartialAggregate,
    ) -> None:
        """Fold one chunk outcome into the wave, rehydrating results."""
        self._context_registry.update(outcome.partial.contexts)
        # Backfill stripped contexts so the partial handed to callers
        # is self-contained even when this worker shipped them earlier.
        for signature in outcome.partial.counts:
            if signature not in outcome.partial.contexts:
                frames = self._context_registry.get(signature)
                if frames is not None:
                    outcome.partial.contexts[signature] = frames
        self._publish_registry(outcome)
        for lean in outcome.results:
            if lean.retry_wall_ms:
                self.retry_wall_ms.append(lean.retry_wall_ms)
            result = lean.hydrate(self._context_registry)
            results[result.index] = result
        partial.merge(outcome.partial)

    def _publish_registry(self, outcome: ChunkOutcome) -> None:
        """Tell the fleet which signatures' frames are already central.

        Appends newly learned signatures to the shared context-registry
        segment; every worker folds them into its shipped-set and stops
        shipping those frame strings — once fleet-wide, not once per
        worker.  Purely an optimisation: whether a worker ships or
        skips, the coordinator backfills from its registry, so results
        and aggregates are byte-identical either way (which is why a
        full registry segment can simply stop publishing).
        """
        if self._plane is None or self._registry_full:
            return
        novel = sorted(
            signature
            for signature in outcome.partial.counts
            if signature not in self._registry_shipped
            and signature in self._context_registry
        )
        if not novel:
            return
        try:
            self._plane.registry_append(novel)
        except SegmentFull:
            self._registry_full = True
            return
        self._registry_shipped.update(novel)

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The live executor, if any (stable across healthy waves)."""
        return self._executor

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            shm_names = None
            if self._plane is not None and self._wire_active == WIRE_SHM:
                # Claims of terminated workers must not outlive them:
                # replacement workers re-claim the freed rings.  Only
                # safe here because a new executor is only ever built
                # with every previous worker already terminated.
                self._plane.reset_claims()
                shm_names = self._plane.names()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self._apps,
                    tuple(sorted(self._evidence_base)),
                    shm_names,
                ),
            )
            self._capacity = self.workers
            self._hung_workers = 0
        return self._executor

    def _rebuild(self, executor: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Kill a broken/hung pool and hand back a fresh one."""
        self.executor_rebuilds += 1
        self._terminate(executor)
        self._executor = None
        return self._ensure_executor()

    def _dispose(self) -> None:
        if self._executor is None:
            return
        self._terminate(self._executor)
        self._executor = None
        self._capacity = max(1, self.workers)
        self._hung_workers = 0

    @staticmethod
    def _terminate(executor: ProcessPoolExecutor) -> None:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers are fine
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _failed(
        spec: ExecutionSpec, outcome: str, attempts: int, error: str
    ) -> ExecutionResult:
        return _failed_result(spec, outcome, attempts, error)
