"""The fleet-wide evidence store (DoubleTake's insight, fleet-scale).

CSOD's evidence-based canary makes over-write detection certain by the
*second execution of one process* (§IV-B, §V-A2).  A fleet generalises
that: any execution that observed an overflow uploads the allocation
context's signature, the coordinator merges it here, and every
execution dispatched afterwards preloads the merged set — so the whole
fleet converges after *one* detection anywhere, not one per process.

The on-disk format is exactly the termination unit's persistence file
(``{"version": 1, "contexts": [...]}``), so a store file can be handed
straight to ``CSODConfig(persistence_path=...)`` and vice versa; writes
are atomic (write-temp + rename), and only the coordinator writes, so
workers can never race on it.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.termination import _PERSIST_VERSION, load_persisted


class EvidenceStore:
    """A file-backed, merge-only set of overflowing context signatures.

    Merges are **incremental**: the store keeps its signatures as a
    sorted list maintained by merging each (sorted) batch of new
    signatures in, so a flush serialises without re-sorting the whole
    set — the steady-state cost of absorbing *k* new signatures into a
    store of *n* is O(n + k log k), not O((n + k) log (n + k)).

    The store also tolerates a **concurrent external writer** (another
    coordinator sharing the same evidence file): before merging, the
    file's stat identity (mtime_ns, size, inode) is compared against
    the last state this store wrote or read, and a changed file is
    re-read and unioned in first.  Merge-only semantics make that safe
    — signatures are never removed, so a union can only converge.
    """

    def __init__(self, path: Optional[str] = None):
        """``path=None`` keeps the store purely in memory."""
        self.path = path
        self._signatures: Set[str] = set(load_persisted(path))
        self._sorted: List[str] = sorted(self._signatures)
        self._stamp = self._stat_stamp()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> FrozenSet[str]:
        """The current merged signature set (safe to share with specs)."""
        return frozenset(self._signatures)

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, signature: str) -> bool:
        return signature in self._signatures

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def merge(self, signatures: Iterable[str]) -> int:
        """Fold in new signatures; returns how many were actually new.

        The file is rewritten only when the set grew, keeping the
        no-detection steady state write-free.
        """
        return len(self.absorb(signatures))

    def absorb(self, signatures: Iterable[str]) -> FrozenSet[str]:
        """Fold in new signatures; returns exactly the new ones.

        The returned set is what a coordinator broadcasts as the next
        evidence *delta* (:meth:`FleetPool.advance_evidence`) — workers
        already hold everything older.
        """
        incoming = set(signatures)
        self._refresh_external()
        new = frozenset(incoming - self._signatures)
        if not new:
            return new
        self._absorb_sorted(sorted(new))
        self._flush()
        return new

    def _absorb_sorted(self, batch: List[str]) -> None:
        """Merge an already-sorted batch of novel signatures in."""
        self._signatures.update(batch)
        self._sorted = list(heapq.merge(self._sorted, batch))

    # ------------------------------------------------------------------
    # File identity (concurrent-writer tolerance)
    # ------------------------------------------------------------------
    def _stat_stamp(self) -> Optional[Tuple[int, int, int]]:
        if self.path is None:
            return None
        try:
            info = os.stat(self.path)
        except OSError:
            return None
        return (info.st_mtime_ns, info.st_size, info.st_ino)

    def _refresh_external(self) -> None:
        """Union in signatures another writer persisted since we looked.

        Writers are atomic (temp + rename), so a reader only ever sees
        a complete file; a stamp mismatch means someone else renamed a
        new version into place.
        """
        if self.path is None:
            return
        stamp = self._stat_stamp()
        if stamp == self._stamp:
            return
        external = set(load_persisted(self.path)) - self._signatures
        if external:
            self._absorb_sorted(sorted(external))
        self._stamp = stamp

    def _flush(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": _PERSIST_VERSION,
            "contexts": self._sorted,
        }
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp_path, self.path)
        self._stamp = self._stat_stamp()


class TemporaryEvidenceStore(EvidenceStore):
    """An EvidenceStore in a self-cleaning temporary directory.

    Replaces the campaign driver's old ad-hoc ``tempfile.mkdtemp``
    plumbing, which leaked its directory on every run (and its evidence
    file whenever an execution raised).  Use as a context manager, or
    call :meth:`cleanup` from a ``finally`` block.
    """

    def __init__(self, prefix: str = "csod-fleet-"):
        self._tmpdir = tempfile.TemporaryDirectory(prefix=prefix)
        super().__init__(os.path.join(self._tmpdir.name, "evidence.json"))

    def cleanup(self) -> None:
        self._tmpdir.cleanup()

    def __enter__(self) -> "TemporaryEvidenceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()
