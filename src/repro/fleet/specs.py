"""Fleet execution specs and results.

A fleet campaign is a list of :class:`ExecutionSpec`s — one simulated
production process each — fanned out over a worker pool.  Both the spec
and the :class:`ExecutionResult` coming back are plain picklable data:
the spec carries everything a worker needs to reconstruct the execution
deterministically (app name, config, seed, preloaded evidence), and the
result carries only serialisable facts (signatures, counters, report
dicts), never live runtime objects.  That is the GWP-ASan shape: the
process under test knows nothing about the fleet; the crash handler
uploads a self-contained report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import CSODConfig

OUTCOME_OK = "ok"
OUTCOME_CRASH = "worker-crash"
OUTCOME_TIMEOUT = "timeout"


@dataclass(frozen=True)
class ExecutionSpec:
    """One execution of one app under one seeded CSOD runtime."""

    app: str
    seed: int
    index: int  # 0-based position in the campaign
    config: CSODConfig = field(default_factory=CSODConfig)
    # Evidence signatures persisted by earlier executions; the worker
    # preloads them so known-bad contexts are watched from the first
    # allocation (§IV-B).
    evidence: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ReportRecord:
    """The picklable projection of one OverflowReport."""

    signature: str
    kind: str
    source: str
    allocation_context: Tuple[str, ...]
    access_context: Tuple[str, ...]


@dataclass
class ExecutionResult:
    """What one execution sends back to the aggregator."""

    app: str
    seed: int
    index: int
    outcome: str = OUTCOME_OK
    detected: bool = False
    detected_by_watchpoint: bool = False
    reports: List[ReportRecord] = field(default_factory=list)
    # Evidence signatures this execution would persist (overflow observed).
    new_evidence: Tuple[str, ...] = ()
    # Counters lifted from CSODStats for telemetry.
    allocations: int = 0
    contexts: int = 0
    watched_times: int = 0
    traps_handled: int = 0
    canary_corruptions: int = 0
    wall_seconds: float = 0.0
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK
