"""Fleet execution specs and results.

A fleet campaign is a list of :class:`ExecutionSpec`s — one simulated
production process each — fanned out over a worker pool.  Both the spec
and the :class:`ExecutionResult` coming back are plain picklable data:
the spec carries everything a worker needs to reconstruct the execution
deterministically (app name, config, seed, preloaded evidence), and the
result carries only serialisable facts (signatures, counters, report
dicts), never live runtime objects.  That is the GWP-ASan shape: the
process under test knows nothing about the fleet; the crash handler
uploads a self-contained report.

Dispatch is **chunked**: the coordinator groups specs into
:class:`WorkChunk`s, one pickle/IPC round trip each, and a worker runs
the chunk serially and answers with a single :class:`ChunkOutcome` —
per-execution :class:`LeanExecutionResult`s (report signatures only,
frame strings shipped once per novel signature via the chunk's context
table) plus a pre-folded partial aggregate.  The coordinator rehydrates
the lean results into full :class:`ExecutionResult`s, so pool callers
never see the wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import CSODConfig
from repro.fleet.shm import WIRE_PICKLE

OUTCOME_OK = "ok"
OUTCOME_CRASH = "worker-crash"
OUTCOME_TIMEOUT = "timeout"

# signature -> (allocation_context frames, access_context frames)
ContextTable = Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]


@dataclass(frozen=True)
class ExecutionSpec:
    """One execution of one app under one seeded CSOD runtime."""

    app: str
    seed: int
    index: int  # 0-based position in the campaign
    config: CSODConfig = field(default_factory=CSODConfig)
    # Evidence signatures persisted by earlier executions; the worker
    # preloads them so known-bad contexts are watched from the first
    # allocation (§IV-B).  Campaign dispatch leaves this empty and
    # broadcasts evidence per chunk instead (epoch + delta); a spec
    # with explicit evidence always wins over the chunk's.
    evidence: Tuple[str, ...] = ()
    # Allocation-schedule scale factor; ``None`` selects the app's
    # default effectiveness scale.  Bisection shrinks this toward the
    # smallest schedule that still re-triggers a cluster.
    scale: Optional[float] = None


@dataclass(frozen=True)
class ReportRecord:
    """The picklable projection of one OverflowReport."""

    signature: str
    kind: str
    source: str
    allocation_context: Tuple[str, ...]
    access_context: Tuple[str, ...]


@dataclass
class ExecutionResult:
    """What one execution sends back to the aggregator."""

    app: str
    seed: int
    index: int
    outcome: str = OUTCOME_OK
    detected: bool = False
    detected_by_watchpoint: bool = False
    reports: List[ReportRecord] = field(default_factory=list)
    # Evidence signatures this execution would persist (overflow observed).
    new_evidence: Tuple[str, ...] = ()
    # Counters lifted from CSODStats for telemetry.
    allocations: int = 0
    contexts: int = 0
    watched_times: int = 0
    traps_handled: int = 0
    canary_corruptions: int = 0
    wall_seconds: float = 0.0
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK


@dataclass(frozen=True)
class WorkChunk:
    """One IPC round trip: several specs run serially in one worker.

    The evidence broadcast is a **delta**: workers hold the snapshot
    from campaign start (shipped once, via the executor initializer)
    and the chunk carries only the signatures merged since then, with
    the epoch they correspond to.  The worker reconstructs the full
    wave-boundary set as ``base | delta`` — signatures are preloaded
    as a *set*, so the reconstruction is byte-for-byte equivalent to
    shipping the whole sorted tuple.
    """

    specs: Tuple[ExecutionSpec, ...]
    evidence_epoch: int = 0
    evidence_delta: Tuple[str, ...] = ()
    # Base attempt number: 2 when the chunk is a coordinator-side
    # resubmission of crashed specs (no further retry inside).
    attempts: int = 1
    retry_crashed: bool = True
    # Which data plane carries this chunk's evidence and results.  With
    # ``wire="shm"`` the chunk ships **no evidence at all**: workers
    # read the shared evidence segment up to ``evidence_slots`` (the
    # slot count published at the chunk's epoch) and answer with a
    # :class:`repro.fleet.shm.BlobHandle` into their result ring
    # instead of a pickled outcome.  ``wire="pickle"`` chunks behave
    # exactly as before — also the per-chunk fallback when the shm
    # plane fills or fails mid-campaign.
    wire: str = WIRE_PICKLE
    evidence_slots: int = 0


@dataclass
class LeanExecutionResult:
    """The wire form of one execution: signatures, no frame strings.

    Frame tuples travel once per novel signature in the chunk's context
    table; :meth:`hydrate` re-attaches them coordinator-side, so equal
    executions produce equal :class:`ExecutionResult`s at any worker
    count.
    """

    app: str
    seed: int
    index: int
    outcome: str = OUTCOME_OK
    detected: bool = False
    detected_by_watchpoint: bool = False
    # (signature, kind, source) triples, in report order.
    reports: Tuple[Tuple[str, str, str], ...] = ()
    new_evidence: Tuple[str, ...] = ()
    allocations: int = 0
    contexts: int = 0
    watched_times: int = 0
    traps_handled: int = 0
    canary_corruptions: int = 0
    wall_seconds: float = 0.0
    attempts: int = 1
    error: Optional[str] = None
    # Wall-clock spent on the in-worker crash retry, if one happened.
    retry_wall_ms: float = 0.0

    def hydrate(self, contexts: ContextTable) -> ExecutionResult:
        """Rebuild the full result from the coordinator's context table."""
        empty = ((), ())
        return ExecutionResult(
            app=self.app,
            seed=self.seed,
            index=self.index,
            outcome=self.outcome,
            detected=self.detected,
            detected_by_watchpoint=self.detected_by_watchpoint,
            reports=[
                ReportRecord(
                    signature=signature,
                    kind=kind,
                    source=source,
                    allocation_context=contexts.get(signature, empty)[0],
                    access_context=contexts.get(signature, empty)[1],
                )
                for signature, kind, source in self.reports
            ],
            new_evidence=self.new_evidence,
            allocations=self.allocations,
            contexts=self.contexts,
            watched_times=self.watched_times,
            traps_handled=self.traps_handled,
            canary_corruptions=self.canary_corruptions,
            wall_seconds=self.wall_seconds,
            attempts=self.attempts,
            error=self.error,
        )


def lean_from(result: ExecutionResult, retry_wall_ms: float = 0.0) -> LeanExecutionResult:
    """Project a full result onto the wire form."""
    return LeanExecutionResult(
        app=result.app,
        seed=result.seed,
        index=result.index,
        outcome=result.outcome,
        detected=result.detected,
        detected_by_watchpoint=result.detected_by_watchpoint,
        reports=tuple(
            (r.signature, r.kind, r.source) for r in result.reports
        ),
        new_evidence=result.new_evidence,
        allocations=result.allocations,
        contexts=result.contexts,
        watched_times=result.watched_times,
        traps_handled=result.traps_handled,
        canary_corruptions=result.canary_corruptions,
        wall_seconds=result.wall_seconds,
        attempts=result.attempts,
        error=result.error,
        retry_wall_ms=retry_wall_ms,
    )
