"""Central report aggregation.

The fleet-side half of the GWP-ASan architecture: every execution
uploads its reports, and the aggregator collapses them into one row per
*bug* — keyed by :meth:`OverflowReport.signature`, a stable function of
(kind, allocation context, access context) — with hit counts,
first-seen execution index, and Wilson confidence intervals on the
per-execution detection rate (reusing the campaign module's interval,
the same statistic the paper's 1,000-execution protocol needs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.campaign import wilson_interval
from repro.experiments.tables import render_table
from repro.fleet.specs import ContextTable, ExecutionResult, ReportRecord


@dataclass
class PartialAggregate:
    """A worker's mergeable fold of one chunk of execution results.

    Everything here is a sum, a min, or a set-union keyed by report
    signature, so :meth:`merge` is associative *and* commutative:
    however the coordinator splits specs into chunks and in whatever
    order the chunk results land, the merged aggregate — and therefore
    :meth:`FleetAggregator.to_dict` — is identical.  Frame strings for
    a signature travel in :attr:`contexts` only the first time a worker
    ships it, which keeps result pickles near-constant-size once the
    campaign's bugs have been seen.
    """

    executions: int = 0
    executions_ok: int = 0
    executions_detected: int = 0
    executions_detected_by_watchpoint: int = 0
    raw_reports: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    # Distinct executions that raised each signature.
    execution_hits: Dict[str, int] = field(default_factory=dict)
    first_seen: Dict[str, int] = field(default_factory=dict)
    # (app, seed) of the first-seen execution — with the index this
    # recovers the originating ExecutionSpec, which bisection replays.
    first_seen_spec: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)
    sources: Dict[str, Dict[str, int]] = field(default_factory=dict)
    contexts: ContextTable = field(default_factory=dict)
    # Power-of-two wall-time buckets (ms); mergeable, unlike raw samples.
    wall_ms_buckets: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Fold (worker side)
    # ------------------------------------------------------------------
    def observe(self, result: ExecutionResult) -> None:
        """Fold one execution in — the mergeable mirror of
        :meth:`FleetAggregator.add`."""
        self.executions += 1
        bucket = (
            0
            if result.wall_seconds <= 0
            else 1 + int(math.log2(max(result.wall_seconds * 1e3, 1.0)))
        )
        self.wall_ms_buckets[bucket] = self.wall_ms_buckets.get(bucket, 0) + 1
        if not result.ok:
            return
        self.executions_ok += 1
        if result.detected:
            self.executions_detected += 1
        if result.detected_by_watchpoint:
            self.executions_detected_by_watchpoint += 1
        seen_this_execution = set()
        for record in result.reports:
            self.raw_reports += 1
            signature = record.signature
            if signature not in self.counts:
                self.counts[signature] = 0
                self.execution_hits[signature] = 0
                self.first_seen[signature] = result.index
                self.first_seen_spec[signature] = (result.app, result.seed)
                self.kinds[signature] = record.kind
                self.sources[signature] = {}
                self.contexts[signature] = (
                    record.allocation_context,
                    record.access_context,
                )
            self.counts[signature] += 1
            per_source = self.sources[signature]
            per_source[record.source] = per_source.get(record.source, 0) + 1
            if signature not in seen_this_execution:
                self.execution_hits[signature] += 1
                seen_this_execution.add(signature)
            if result.index < self.first_seen[signature]:
                self.first_seen[signature] = result.index
                self.first_seen_spec[signature] = (result.app, result.seed)

    @classmethod
    def refold(cls, results) -> "PartialAggregate":
        """Fold an iterable of results into a fresh partial.

        The shm wire's decode path: binary result rows are hydrated
        into :class:`ExecutionResult`s and refolded coordinator-side —
        :meth:`observe` is deterministic in result order, so the refold
        equals the fold the worker would have shipped, minus the pickle.
        """
        partial = cls()
        for result in results:
            partial.observe(result)
        return partial

    # ------------------------------------------------------------------
    # Merge (coordinator side)
    # ------------------------------------------------------------------
    def merge(self, other: "PartialAggregate") -> "PartialAggregate":
        """Fold ``other`` in; returns self for chaining."""
        self.executions += other.executions
        self.executions_ok += other.executions_ok
        self.executions_detected += other.executions_detected
        self.executions_detected_by_watchpoint += (
            other.executions_detected_by_watchpoint
        )
        self.raw_reports += other.raw_reports
        for signature, count in other.counts.items():
            self.counts[signature] = self.counts.get(signature, 0) + count
        for signature, hits in other.execution_hits.items():
            self.execution_hits[signature] = (
                self.execution_hits.get(signature, 0) + hits
            )
        for signature, index in other.first_seen.items():
            mine = self.first_seen.get(signature)
            if mine is None or index < mine:
                self.first_seen[signature] = index
                spec = other.first_seen_spec.get(signature)
                if spec is not None:
                    self.first_seen_spec[signature] = spec
        for signature, kind in other.kinds.items():
            self.kinds.setdefault(signature, kind)
        for signature, per_source in other.sources.items():
            mine_sources = self.sources.setdefault(signature, {})
            for source, count in per_source.items():
                mine_sources[source] = mine_sources.get(source, 0) + count
        for signature, frames in other.contexts.items():
            self.contexts.setdefault(signature, frames)
        for bucket, count in other.wall_ms_buckets.items():
            self.wall_ms_buckets[bucket] = (
                self.wall_ms_buckets.get(bucket, 0) + count
            )
        return self


@dataclass
class AggregatedReport:
    """Every observation of one deduplicated bug, fleet-wide."""

    signature: str
    kind: str
    count: int = 0  # raw report observations (pre-dedup)
    executions: int = 0  # distinct executions that raised it
    first_seen: int = -1  # 0-based execution index of the first sighting
    # App/seed of the first-seen execution: (first_seen_app,
    # first_seen_seed, first_seen) identifies the originating
    # ExecutionSpec, the starting point for minimal-repro bisection.
    first_seen_app: str = ""
    first_seen_seed: int = -1
    sources: Dict[str, int] = field(default_factory=dict)
    allocation_context: Tuple[str, ...] = ()
    access_context: Tuple[str, ...] = ()

    def rate_interval(self, total_executions: int) -> Tuple[float, float]:
        """Wilson 95% CI on the per-execution detection rate."""
        return wilson_interval(self.executions, total_executions)

    def first_seen_spec(self) -> dict:
        """The originating execution's spec identity, JSON-ready."""
        return {
            "app": self.first_seen_app,
            "seed": self.first_seen_seed,
            "index": self.first_seen,
        }


class FleetAggregator:
    """Merges ExecutionResults into deduplicated fleet-wide reports."""

    def __init__(self):
        self._reports: Dict[str, AggregatedReport] = {}
        self.executions = 0
        self.executions_ok = 0
        self.executions_detected = 0
        self.executions_detected_by_watchpoint = 0
        self.raw_reports = 0
        self.failed: List[ExecutionResult] = []
        # Merged wall-time buckets from partials (not part of to_dict:
        # wall time is nondeterministic, the serialised view is not).
        self.wall_ms_buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, result: ExecutionResult) -> None:
        """Fold one execution's upload into the fleet view."""
        self.executions += 1
        if not result.ok:
            self.failed.append(result)
            return
        self.executions_ok += 1
        if result.detected:
            self.executions_detected += 1
        if result.detected_by_watchpoint:
            self.executions_detected_by_watchpoint += 1
        seen_this_execution = set()
        for record in result.reports:
            self.raw_reports += 1
            entry = self._reports.get(record.signature)
            if entry is None:
                entry = AggregatedReport(
                    signature=record.signature,
                    kind=record.kind,
                    first_seen=result.index,
                    first_seen_app=result.app,
                    first_seen_seed=result.seed,
                    allocation_context=record.allocation_context,
                    access_context=record.access_context,
                )
                self._reports[record.signature] = entry
            entry.count += 1
            entry.sources[record.source] = entry.sources.get(record.source, 0) + 1
            if record.signature not in seen_this_execution:
                entry.executions += 1
                seen_this_execution.add(record.signature)
            if result.index < entry.first_seen:
                entry.first_seen = result.index
                entry.first_seen_app = result.app
                entry.first_seen_seed = result.seed

    def add_all(self, results) -> None:
        for result in results:
            self.add(result)

    def merge_partial(self, partial: PartialAggregate) -> None:
        """Fold one worker-side partial aggregate into the fleet view.

        Equivalent to :meth:`add` over the executions the partial was
        folded from — merging partials in any order produces the same
        state as adding every result serially, which is what keeps
        fixed-seed campaign output byte-identical at any worker count.
        """
        self.executions += partial.executions
        self.executions_ok += partial.executions_ok
        self.executions_detected += partial.executions_detected
        self.executions_detected_by_watchpoint += (
            partial.executions_detected_by_watchpoint
        )
        self.raw_reports += partial.raw_reports
        for signature, count in partial.counts.items():
            entry = self._reports.get(signature)
            spec = partial.first_seen_spec.get(signature, ("", -1))
            if entry is None:
                frames = partial.contexts.get(signature, ((), ()))
                entry = AggregatedReport(
                    signature=signature,
                    kind=partial.kinds[signature],
                    first_seen=partial.first_seen[signature],
                    first_seen_app=spec[0],
                    first_seen_seed=spec[1],
                    allocation_context=frames[0],
                    access_context=frames[1],
                )
                self._reports[signature] = entry
            elif partial.first_seen[signature] < entry.first_seen:
                entry.first_seen = partial.first_seen[signature]
                entry.first_seen_app = spec[0]
                entry.first_seen_seed = spec[1]
            entry.count += count
            entry.executions += partial.execution_hits[signature]
            for source, n in partial.sources[signature].items():
                entry.sources[source] = entry.sources.get(source, 0) + n
        for bucket, count in partial.wall_ms_buckets.items():
            self.wall_ms_buckets[bucket] = (
                self.wall_ms_buckets.get(bucket, 0) + count
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def reports(self) -> List[AggregatedReport]:
        """Aggregated reports, most-seen first (signature breaks ties)."""
        return sorted(
            self._reports.values(), key=lambda r: (-r.count, r.signature)
        )

    def unique_reports(self) -> int:
        return len(self._reports)

    @property
    def dedup_ratio(self) -> float:
        """Raw observations per unique bug (1.0 = no duplication)."""
        if not self._reports:
            return 0.0
        return self.raw_reports / len(self._reports)

    def detection_rate_interval(self) -> Tuple[float, float]:
        """Wilson CI on P(an execution detects anything)."""
        if self.executions_ok == 0:
            return 0.0, 0.0
        return wilson_interval(self.executions_detected, self.executions_ok)

    def to_dict(self) -> dict:
        """The deterministic, JSON-ready fleet summary.

        Contains only execution-stable facts (signatures, counts,
        indices) — no timestamps, addresses, or wall-clock — so two
        identically-seeded campaigns serialise byte-identically.
        """
        return {
            "executions": self.executions,
            "executions_ok": self.executions_ok,
            "executions_detected": self.executions_detected,
            "executions_detected_by_watchpoint": self.executions_detected_by_watchpoint,
            "raw_reports": self.raw_reports,
            "unique_reports": self.unique_reports(),
            "dedup_ratio": round(self.dedup_ratio, 4),
            "detection_rate": (
                round(self.executions_detected / self.executions_ok, 6)
                if self.executions_ok
                else 0.0
            ),
            "reports": [
                {
                    "signature": entry.signature,
                    "kind": entry.kind,
                    "count": entry.count,
                    "executions": entry.executions,
                    "first_seen": entry.first_seen,
                    "first_seen_spec": entry.first_seen_spec(),
                    "sources": dict(sorted(entry.sources.items())),
                    "allocation_context": list(entry.allocation_context),
                    "access_context": list(entry.access_context),
                }
                for entry in self.reports()
            ],
        }


def render_fleet_report(
    aggregator: FleetAggregator, title: str = "Fleet campaign"
) -> str:
    """The aggregated-report table plus a summary footer."""
    rows = []
    for entry in aggregator.reports():
        lo, hi = entry.rate_interval(max(aggregator.executions_ok, 1))
        top_alloc = entry.allocation_context[0] if entry.allocation_context else "?"
        sources = ",".join(
            f"{name}x{count}" for name, count in sorted(entry.sources.items())
        )
        rows.append(
            [
                entry.kind,
                top_alloc,
                entry.count,
                entry.executions,
                entry.first_seen + 1,  # 1-based for humans
                f"[{lo:.1%}, {hi:.1%}]",
                sources,
            ]
        )
    table = render_table(
        [
            "kind",
            "allocation site",
            "reports",
            "executions",
            "first seen",
            "95% CI",
            "sources",
        ],
        rows,
        title=title,
    )
    lo, hi = aggregator.detection_rate_interval()
    footer = (
        f"executions={aggregator.executions} ok={aggregator.executions_ok} "
        f"detected={aggregator.executions_detected} "
        f"rate CI=[{lo:.1%}, {hi:.1%}] "
        f"raw reports={aggregator.raw_reports} "
        f"unique={aggregator.unique_reports()} "
        f"dedup={aggregator.dedup_ratio:.2f}x"
    )
    return table + "\n" + footer
