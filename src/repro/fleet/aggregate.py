"""Central report aggregation.

The fleet-side half of the GWP-ASan architecture: every execution
uploads its reports, and the aggregator collapses them into one row per
*bug* — keyed by :meth:`OverflowReport.signature`, a stable function of
(kind, allocation context, access context) — with hit counts,
first-seen execution index, and Wilson confidence intervals on the
per-execution detection rate (reusing the campaign module's interval,
the same statistic the paper's 1,000-execution protocol needs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.campaign import wilson_interval
from repro.experiments.tables import render_table
from repro.fleet.specs import ExecutionResult, ReportRecord


@dataclass
class AggregatedReport:
    """Every observation of one deduplicated bug, fleet-wide."""

    signature: str
    kind: str
    count: int = 0  # raw report observations (pre-dedup)
    executions: int = 0  # distinct executions that raised it
    first_seen: int = -1  # 0-based execution index of the first sighting
    sources: Dict[str, int] = field(default_factory=dict)
    allocation_context: Tuple[str, ...] = ()
    access_context: Tuple[str, ...] = ()

    def rate_interval(self, total_executions: int) -> Tuple[float, float]:
        """Wilson 95% CI on the per-execution detection rate."""
        return wilson_interval(self.executions, total_executions)


class FleetAggregator:
    """Merges ExecutionResults into deduplicated fleet-wide reports."""

    def __init__(self):
        self._reports: Dict[str, AggregatedReport] = {}
        self.executions = 0
        self.executions_ok = 0
        self.executions_detected = 0
        self.executions_detected_by_watchpoint = 0
        self.raw_reports = 0
        self.failed: List[ExecutionResult] = []

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, result: ExecutionResult) -> None:
        """Fold one execution's upload into the fleet view."""
        self.executions += 1
        if not result.ok:
            self.failed.append(result)
            return
        self.executions_ok += 1
        if result.detected:
            self.executions_detected += 1
        if result.detected_by_watchpoint:
            self.executions_detected_by_watchpoint += 1
        seen_this_execution = set()
        for record in result.reports:
            self.raw_reports += 1
            entry = self._reports.get(record.signature)
            if entry is None:
                entry = AggregatedReport(
                    signature=record.signature,
                    kind=record.kind,
                    first_seen=result.index,
                    allocation_context=record.allocation_context,
                    access_context=record.access_context,
                )
                self._reports[record.signature] = entry
            entry.count += 1
            entry.sources[record.source] = entry.sources.get(record.source, 0) + 1
            if record.signature not in seen_this_execution:
                entry.executions += 1
                seen_this_execution.add(record.signature)
            if result.index < entry.first_seen:
                entry.first_seen = result.index

    def add_all(self, results) -> None:
        for result in results:
            self.add(result)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def reports(self) -> List[AggregatedReport]:
        """Aggregated reports, most-seen first (signature breaks ties)."""
        return sorted(
            self._reports.values(), key=lambda r: (-r.count, r.signature)
        )

    def unique_reports(self) -> int:
        return len(self._reports)

    @property
    def dedup_ratio(self) -> float:
        """Raw observations per unique bug (1.0 = no duplication)."""
        if not self._reports:
            return 0.0
        return self.raw_reports / len(self._reports)

    def detection_rate_interval(self) -> Tuple[float, float]:
        """Wilson CI on P(an execution detects anything)."""
        if self.executions_ok == 0:
            return 0.0, 0.0
        return wilson_interval(self.executions_detected, self.executions_ok)

    def to_dict(self) -> dict:
        """The deterministic, JSON-ready fleet summary.

        Contains only execution-stable facts (signatures, counts,
        indices) — no timestamps, addresses, or wall-clock — so two
        identically-seeded campaigns serialise byte-identically.
        """
        return {
            "executions": self.executions,
            "executions_ok": self.executions_ok,
            "executions_detected": self.executions_detected,
            "executions_detected_by_watchpoint": self.executions_detected_by_watchpoint,
            "raw_reports": self.raw_reports,
            "unique_reports": self.unique_reports(),
            "dedup_ratio": round(self.dedup_ratio, 4),
            "detection_rate": (
                round(self.executions_detected / self.executions_ok, 6)
                if self.executions_ok
                else 0.0
            ),
            "reports": [
                {
                    "signature": entry.signature,
                    "kind": entry.kind,
                    "count": entry.count,
                    "executions": entry.executions,
                    "first_seen": entry.first_seen,
                    "sources": dict(sorted(entry.sources.items())),
                    "allocation_context": list(entry.allocation_context),
                    "access_context": list(entry.access_context),
                }
                for entry in self.reports()
            ],
        }


def render_fleet_report(
    aggregator: FleetAggregator, title: str = "Fleet campaign"
) -> str:
    """The aggregated-report table plus a summary footer."""
    rows = []
    for entry in aggregator.reports():
        lo, hi = entry.rate_interval(max(aggregator.executions_ok, 1))
        top_alloc = entry.allocation_context[0] if entry.allocation_context else "?"
        sources = ",".join(
            f"{name}x{count}" for name, count in sorted(entry.sources.items())
        )
        rows.append(
            [
                entry.kind,
                top_alloc,
                entry.count,
                entry.executions,
                entry.first_seen + 1,  # 1-based for humans
                f"[{lo:.1%}, {hi:.1%}]",
                sources,
            ]
        )
    table = render_table(
        [
            "kind",
            "allocation site",
            "reports",
            "executions",
            "first seen",
            "95% CI",
            "sources",
        ],
        rows,
        title=title,
    )
    lo, hi = aggregator.detection_rate_interval()
    footer = (
        f"executions={aggregator.executions} ok={aggregator.executions_ok} "
        f"detected={aggregator.executions_detected} "
        f"rate CI=[{lo:.1%}, {hi:.1%}] "
        f"raw reports={aggregator.raw_reports} "
        f"unique={aggregator.unique_reports()} "
        f"dedup={aggregator.dedup_ratio:.2f}x"
    )
    return table + "\n" + footer
