"""Fleet telemetry: counters, histograms, and a JSONL event log.

Production sampled detectors live or die by their observability — GWP-
ASan ships with per-process counters precisely because a 1-in-1000
sampler that silently stops arming watchpoints looks identical to a
bug-free fleet.  This module is the simulation's counterpart: a tiny
dependency-free metrics registry (counters and histograms) plus an
append-only JSONL event log, one line per execution and per aggregated
report, that survives the run for offline analysis.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Histogram:
    """Stores observations; summarises count/mean/min/max/percentiles.

    Fleet campaigns observe thousands of values at most, so keeping the
    raw samples is cheaper than bucketing would be — and exact
    percentiles make the telemetry assertions in tests deterministic.
    """

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    def observe_many(self, values) -> None:
        """Fold in a batch of observations (e.g. one chunk's walls)."""
        self._values.extend(float(value) for value in values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, -(-len(ordered) * q // 100)) if q else 1
        return ordered[int(rank) - 1]

    def summary(self) -> dict:
        if not self._values:
            return {"count": 0}
        ordered = sorted(self._values)
        return {
            "count": self.count,
            "mean": self.mean,
            "min": ordered[0],
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Lazily-created named counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def snapshot(self) -> dict:
        """All metrics as one JSON-ready dict (names sorted)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }


class JsonlEventLog:
    """An append-only JSONL log: one self-describing event per line.

    Writes are **line-atomic**: the file is opened in unbuffered binary
    append mode and each event is a single ``write()`` of one complete
    ``line + "\\n"`` — there is no userspace buffer that could flush
    half a line, and on POSIX an ``O_APPEND`` write lands as one
    contiguous span.  A concurrent reader tailing the file (the
    service's streaming layer, ``tail -f``, :func:`tail_jsonl`) can
    therefore only ever observe whole lines plus at most one still-
    growing final line — never an interleaving of two events.
    """

    def __init__(self, path: Optional[str] = None):
        """``path=None`` buffers events in memory only (for tests)."""
        self.path = path
        self.events_written = 0
        self._handle: Optional[BinaryIO] = (
            open(path, "ab", buffering=0) if path else None
        )
        self._buffer: List[dict] = []

    def emit(self, event: str, **fields) -> dict:
        """Append one event; returns the record as written."""
        record = {"event": event, **fields}
        if self._handle is not None:
            data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            self._handle.write(data)  # one write() syscall: line-atomic
        else:
            self._buffer.append(record)
        self.events_written += 1
        return record

    def buffered(self) -> List[dict]:
        """In-memory events (only populated when path is None)."""
        return list(self._buffer)

    def flush(self) -> None:
        """Force events to disk (a no-op: every emit already is)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tail_jsonl(path: str, offset: int = 0) -> Tuple[List[dict], int]:
    """Read complete events appended at or after byte ``offset``.

    The follow-reader half of the line-atomicity contract: only lines
    terminated by ``\\n`` are parsed, and the returned offset points
    just past the last complete line — a final line still being written
    is left for the next call rather than surfaced torn.  Returns
    ``([], offset)`` for a file that does not exist yet, so pollers can
    start before the writer.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except FileNotFoundError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    events = []
    for raw in data[: end + 1].splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            events.append(json.loads(raw))
        except json.JSONDecodeError:
            continue
    return events, offset + end + 1


def read_jsonl(path: str) -> List[dict]:
    """Load every event from a JSONL log (skipping malformed lines)."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events
