"""Fleet simulation: parallel campaigns with central aggregation.

CSOD's deployment model (§I, §VI) is statistical: each execution
watches a sampled subset of allocation contexts, and bugs are caught
"eventually with a sufficient number of executions".  This package
runs that fleet for real — a pool of worker *processes*, each one
simulated execution (:mod:`repro.fleet.pool`), a central deduplicating
aggregator keyed on stable report signatures
(:mod:`repro.fleet.aggregate`), a fleet-wide evidence store that
propagates canary detections to later executions
(:mod:`repro.fleet.evidence_store`), and campaign telemetry
(:mod:`repro.fleet.telemetry`) — orchestrated deterministically by
:func:`repro.fleet.runner.run_fleet`.

Two interchangeable data planes carry coordinator↔worker traffic: the
default shared-memory wire (:mod:`repro.fleet.shm` segments +
:mod:`repro.fleet.wire` binary result rows) and the fully-pickled
legacy wire — selected per campaign via ``wire="shm"|"pickle"``, with
byte-identical aggregated output either way.
"""

from repro.fleet.aggregate import (
    AggregatedReport,
    FleetAggregator,
    PartialAggregate,
    render_fleet_report,
)
from repro.fleet.evidence_store import EvidenceStore, TemporaryEvidenceStore
from repro.fleet.pool import FleetPool, WaveResult, execute_spec, run_chunk
from repro.fleet.shm import WIRE_PICKLE, WIRE_SHM, WIRES, shm_supported
from repro.fleet.runner import (
    FleetCampaign,
    FleetRunResult,
    WaveProgress,
    run_fleet,
)
from repro.fleet.specs import (
    ExecutionResult,
    ExecutionSpec,
    LeanExecutionResult,
    ReportRecord,
    WorkChunk,
)
from repro.fleet.telemetry import (
    Counter,
    Histogram,
    JsonlEventLog,
    MetricsRegistry,
    read_jsonl,
    tail_jsonl,
)

__all__ = [
    "AggregatedReport",
    "Counter",
    "EvidenceStore",
    "ExecutionResult",
    "ExecutionSpec",
    "FleetAggregator",
    "FleetCampaign",
    "FleetPool",
    "FleetRunResult",
    "Histogram",
    "JsonlEventLog",
    "LeanExecutionResult",
    "MetricsRegistry",
    "PartialAggregate",
    "ReportRecord",
    "TemporaryEvidenceStore",
    "WIRES",
    "WIRE_PICKLE",
    "WIRE_SHM",
    "WaveProgress",
    "WaveResult",
    "WorkChunk",
    "execute_spec",
    "read_jsonl",
    "render_fleet_report",
    "run_chunk",
    "run_fleet",
    "shm_supported",
]
