"""The binary chunk-result wire format.

The shm data plane ships a worker's :class:`ChunkOutcome` as one
compact binary blob instead of a pickle: struct-packed fixed-width
result rows referencing a per-blob string table (so unicode frames and
arbitrary-width signatures cost exactly their UTF-8 bytes, once), plus
the chunk's novel context-table entries.  The coordinator decodes the
rows back into :class:`LeanExecutionResult`s and *refolds* the partial
aggregate (:meth:`PartialAggregate.refold`) — associative, so merged
state is byte-identical to the pickle wire at any worker count.

Layout (all little-endian, version 1)::

    header     magic u32 | version u16 | flags u16 | n_strings u32
               | n_results u32 | n_contexts u32 | crashes u32 | retries u32
    strings    n_strings x (byte_len u32, utf-8 bytes)
    results    n_results x row:
                 app_id u32 | outcome_id u32 | seed i64 | index u32
                 | detected u8 | detected_by_watchpoint u8 | attempts u8
                 | pad u8 | allocations u64 | contexts u64
                 | watched_times u64 | traps_handled u64
                 | canary_corruptions u64 | wall_seconds f64
                 | retry_wall_ms f64 | error_id u32
                 | n_reports u16 | n_evidence u16
               then n_reports x (sig_id u32, kind_id u32, source_id u32)
               then n_evidence x sig_id u32
    contexts   n_contexts x (sig_id u32, n_alloc u16, n_access u16,
               then (n_alloc + n_access) x frame_id u32)

String ids index the table; ``NONE_ID`` marks an absent ``error``.
The codec is transport-agnostic: blobs ride a shared-memory ring when
one is available and fall back to travelling inline over the pickle
pipe otherwise — same bytes either way.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.fleet.specs import ContextTable, LeanExecutionResult

WIRE_MAGIC = 0x43534457  # "CSDW"
WIRE_VERSION = 1
NONE_ID = 0xFFFFFFFF

_HEADER = struct.Struct("<IHHIIIII")
_ROW = struct.Struct("<IIqIBBBxQQQQQddIHH")
_U32 = struct.Struct("<I")
_CTX = struct.Struct("<IHH")


class WireError(ValueError):
    """A blob that cannot be decoded (corrupt, truncated, or foreign)."""


class _Interner:
    """Deduplicating string table builder; ids are insertion-ordered."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def intern(self, value: str) -> int:
        found = self._ids.get(value)
        if found is not None:
            return found
        idx = len(self.strings)
        self._ids[value] = idx
        self.strings.append(value)
        return idx


def encode_chunk_outcome(
    results: List[LeanExecutionResult],
    contexts: ContextTable,
    crashes: int = 0,
    retries: int = 0,
) -> bytes:
    """Pack one chunk's results + novel contexts into a binary blob."""
    interner = _Interner()
    body: List[bytes] = []
    for lean in results:
        row = _ROW.pack(
            interner.intern(lean.app),
            interner.intern(lean.outcome),
            lean.seed,
            lean.index,
            1 if lean.detected else 0,
            1 if lean.detected_by_watchpoint else 0,
            lean.attempts,
            lean.allocations,
            lean.contexts,
            lean.watched_times,
            lean.traps_handled,
            lean.canary_corruptions,
            lean.wall_seconds,
            lean.retry_wall_ms,
            NONE_ID if lean.error is None else interner.intern(lean.error),
            len(lean.reports),
            len(lean.new_evidence),
        )
        refs = [
            _U32.pack(interner.intern(part))
            for report in lean.reports
            for part in report
        ]
        refs += [_U32.pack(interner.intern(sig)) for sig in lean.new_evidence]
        body.append(row + b"".join(refs))
    ctx_parts: List[bytes] = []
    for signature in sorted(contexts):
        alloc, access = contexts[signature]
        ctx_parts.append(
            _CTX.pack(interner.intern(signature), len(alloc), len(access))
            + b"".join(
                _U32.pack(interner.intern(frame)) for frame in alloc + access
            )
        )
    table = b"".join(
        _U32.pack(len(raw)) + raw
        for raw in (s.encode("utf-8") for s in interner.strings)
    )
    header = _HEADER.pack(
        WIRE_MAGIC,
        WIRE_VERSION,
        0,
        len(interner.strings),
        len(results),
        len(ctx_parts),
        crashes,
        retries,
    )
    return header + table + b"".join(body) + b"".join(ctx_parts)


def decode_chunk_outcome(
    blob: bytes,
) -> Tuple[List[LeanExecutionResult], ContextTable, int, int]:
    """The exact inverse of :func:`encode_chunk_outcome`."""
    try:
        return _decode(blob)
    except WireError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise WireError(f"truncated or corrupt wire blob: {exc}") from None


def _decode(blob: bytes):
    if len(blob) < _HEADER.size:
        raise WireError(f"blob too short for header: {len(blob)} bytes")
    (
        magic,
        version,
        _flags,
        n_strings,
        n_results,
        n_contexts,
        crashes,
        retries,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != WIRE_MAGIC:
        raise WireError(f"bad wire magic 0x{magic:08x}")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    offset = _HEADER.size
    strings: List[str] = []
    for _ in range(n_strings):
        (length,) = _U32.unpack_from(blob, offset)
        offset += 4
        strings.append(blob[offset : offset + length].decode("utf-8"))
        offset += length
    results: List[LeanExecutionResult] = []
    for _ in range(n_results):
        (
            app_id,
            outcome_id,
            seed,
            index,
            detected,
            detected_by_wp,
            attempts,
            allocations,
            contexts_count,
            watched_times,
            traps_handled,
            canary_corruptions,
            wall_seconds,
            retry_wall_ms,
            error_id,
            n_reports,
            n_evidence,
        ) = _ROW.unpack_from(blob, offset)
        offset += _ROW.size
        reports = []
        for _ in range(n_reports):
            sig_id, kind_id, source_id = struct.unpack_from("<III", blob, offset)
            offset += 12
            reports.append((strings[sig_id], strings[kind_id], strings[source_id]))
        evidence = []
        for _ in range(n_evidence):
            (sig_id,) = _U32.unpack_from(blob, offset)
            offset += 4
            evidence.append(strings[sig_id])
        results.append(
            LeanExecutionResult(
                app=strings[app_id],
                seed=seed,
                index=index,
                outcome=strings[outcome_id],
                detected=bool(detected),
                detected_by_watchpoint=bool(detected_by_wp),
                reports=tuple(reports),
                new_evidence=tuple(evidence),
                allocations=allocations,
                contexts=contexts_count,
                watched_times=watched_times,
                traps_handled=traps_handled,
                canary_corruptions=canary_corruptions,
                wall_seconds=wall_seconds,
                attempts=attempts,
                error=None if error_id == NONE_ID else strings[error_id],
                retry_wall_ms=retry_wall_ms,
            )
        )
    contexts: ContextTable = {}
    for _ in range(n_contexts):
        sig_id, n_alloc, n_access = _CTX.unpack_from(blob, offset)
        offset += _CTX.size
        frames = []
        for _ in range(n_alloc + n_access):
            (frame_id,) = _U32.unpack_from(blob, offset)
            offset += 4
            frames.append(strings[frame_id])
        contexts[strings[sig_id]] = (
            tuple(frames[:n_alloc]),
            tuple(frames[n_alloc:]),
        )
    if offset != len(blob):
        raise WireError(
            f"trailing bytes after decode: {len(blob) - offset} of {len(blob)}"
        )
    return results, contexts, crashes, retries
