"""The shared-memory fleet data plane.

Three kinds of ``multiprocessing.shared_memory`` segments replace the
pickled broadcast/result IPC when ``wire="shm"``:

* an **evidence segment** — an epoch'd append-only
  :class:`StringLogSegment` of context signatures.  The coordinator
  appends each wave's newly merged evidence and publishes (slot count,
  epoch); workers attach once in the executor initializer and re-read
  only the slots they have not parsed yet — no deserialization, no
  per-chunk evidence payload.
* a **context-registry segment** — the same log format, carrying the
  report signatures whose symbolized frames the coordinator already
  holds.  Workers fold it into their shipped-set, so frame strings
  travel worker→coordinator once *fleet-wide* instead of once per
  worker.
* per-worker **result rings** — :class:`RingSegment`s into which a
  worker writes each chunk's binary blob (:mod:`repro.fleet.wire`);
  the future returns only a tiny :class:`BlobHandle` (slot, offset,
  length, sequence number) and the coordinator reads the bytes
  directly out of shared memory.

Log segments hold fixed-width slots; a record is ``u32 byte-length +
UTF-8 payload`` starting on a slot boundary and spanning continuation
slots when longer than one slot, so arbitrary-width signatures keep
the O(1) slot addressing.  Publication is a header word pair written
*after* the slot bytes (count, then epoch), and the coordinator always
publishes before submitting the chunks that reference the new count,
so a worker that can see the chunk can see the slots.

Ring frames are ``u32 magic + u32 length + u64 seq`` followed by the
payload, at monotonically increasing *virtual* offsets (physical =
virtual mod capacity; a frame never wraps — the writer skips the tail
instead).  The coordinator advances a shared read cursor after every
fetch and the worker refuses to overwrite unread bytes, falling back
to shipping the blob inline over the pipe — so a slow coordinator
degrades, never corrupts.  Every fetch re-verifies magic, length, and
sequence number.

Worker↔ring assignment uses a **claim protocol**: ring ``i`` belongs
to whichever worker first creates the claim segment ``<prefix>c<i>``
(``O_CREAT|O_EXCL`` makes creation atomic).  Claims persist for the
worker's lifetime; the coordinator unlinks them when it closes the
plane or rebuilds the executor, so replacement workers can re-claim
the rings of terminated ones.

The coordinator owns every segment's lifecycle: names are chosen up
front, :meth:`ShmDataPlane.unlink` is idempotent, and a pid-guarded
``weakref.finalize`` backstops close() so neither a dropped pool nor a
forked worker's exit can leak (or prematurely destroy) a segment.
"""

from __future__ import annotations

import os
import secrets
import struct
import time
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

try:  # pragma: no cover — import success is the common case
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover — platforms without _posixshmem
    _shared_memory = None

WIRE_PICKLE = "pickle"
WIRE_SHM = "shm"
WIRES = (WIRE_PICKLE, WIRE_SHM)

_LOG_MAGIC = 0x43534C47  # "CSLG"
_RING_MAGIC = 0x43535247  # "CSRG"
_FRAME_MAGIC = 0x43534652  # "CSFR"
_VERSION = 1

# Log header: magic u32 | version u32 | slot_width u32 | pad u32
#             | capacity_slots u64 | published_slots u64 | epoch u64
_LOG_HEADER = struct.Struct("<IIIIQQQ")
_LOG_HEADER_BYTES = 64
# Ring header: magic u32 | version u32 | data_capacity u64
#              | vwrite u64 | seq u64 | vread u64
_RING_HEADER = struct.Struct("<IIQQQQ")
_RING_HEADER_BYTES = 64
_FRAME_HEADER = struct.Struct("<IIQ")

DEFAULT_SLOT_WIDTH = 192
DEFAULT_EVIDENCE_SLOTS = 4096
DEFAULT_REGISTRY_SLOTS = 4096
DEFAULT_RING_BYTES = 4 * 1024 * 1024

# Worker-side wait for a publication the chunk references (the publish
# always happens-before the submit, so this only absorbs cache lag).
_PUBLISH_WAIT_SECONDS = 5.0


class SegmentFull(RuntimeError):
    """An append would not fit; the caller falls back to the pipe."""


class SegmentCorrupt(RuntimeError):
    """A frame or header failed verification (overwritten or foreign)."""


_SUPPORTED: Optional[bool] = None


def shm_supported() -> bool:
    """Can this interpreter create POSIX shared memory segments?"""
    global _SUPPORTED
    if _SUPPORTED is not None:
        return _SUPPORTED
    if _shared_memory is None:
        _SUPPORTED = False
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=16)
    except Exception:  # noqa: BLE001 — any failure means "no"
        _SUPPORTED = False
        return False
    try:
        probe.unlink()
    finally:
        probe.close()
    _SUPPORTED = True
    return True


def _unlink_quietly(name: str) -> bool:
    """Unlink a segment by name; True when it existed."""
    if _shared_memory is None:
        return False
    try:
        segment = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover — lost a race, fine
        pass
    segment.close()
    return True


# ----------------------------------------------------------------------
# Append-only string log
# ----------------------------------------------------------------------
class StringLogSegment:
    """Fixed-width-slot append-only UTF-8 record log with epochs.

    Single writer (the coordinator), many readers (workers).  Readers
    keep their own slot cursor and parse only new slots.
    """

    def __init__(self, segment, writable: bool):
        self._shm = segment
        self._writable = writable
        buf = segment.buf
        magic, version, slot_width, _pad, capacity, published, _epoch = (
            _LOG_HEADER.unpack_from(buf, 0)
        )
        if magic != _LOG_MAGIC or version != _VERSION:
            raise SegmentCorrupt(
                f"segment {segment.name!r} is not a v{_VERSION} string log"
            )
        self.slot_width = slot_width
        self.capacity_slots = capacity
        # Writer-side tail (slots written, possibly unpublished).
        self._tail_slots = published if writable else 0

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        capacity_slots: int = DEFAULT_EVIDENCE_SLOTS,
        slot_width: int = DEFAULT_SLOT_WIDTH,
    ) -> "StringLogSegment":
        size = _LOG_HEADER_BYTES + capacity_slots * slot_width
        segment = _shared_memory.SharedMemory(name=name, create=True, size=size)
        _LOG_HEADER.pack_into(
            segment.buf, 0, _LOG_MAGIC, _VERSION, slot_width, 0,
            capacity_slots, 0, 0,
        )
        return cls(segment, writable=True)

    @classmethod
    def attach(cls, name: str) -> "StringLogSegment":
        return cls(_shared_memory.SharedMemory(name=name), writable=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def published_slots(self) -> int:
        return _LOG_HEADER.unpack_from(self._shm.buf, 0)[5]

    @property
    def epoch(self) -> int:
        return _LOG_HEADER.unpack_from(self._shm.buf, 0)[6]

    def _slots_for(self, payload: bytes) -> int:
        return -(-(4 + len(payload)) // self.slot_width)

    def append(self, records: Iterable[str]) -> None:
        """Write records after the tail; invisible until :meth:`publish`."""
        assert self._writable, "readers must not append"
        buf = self._shm.buf
        tail = self._tail_slots
        staged = []
        for record in records:
            payload = record.encode("utf-8")
            slots = self._slots_for(payload)
            staged.append((payload, slots))
            tail += slots
        if tail > self.capacity_slots:
            raise SegmentFull(
                f"string log {self.name!r} full: need {tail} of "
                f"{self.capacity_slots} slots"
            )
        for payload, slots in staged:
            offset = _LOG_HEADER_BYTES + self._tail_slots * self.slot_width
            struct.pack_into("<I", buf, offset, len(payload))
            buf[offset + 4 : offset + 4 + len(payload)] = payload
            self._tail_slots += slots

    def publish(self, epoch: int) -> None:
        """Make everything appended so far visible, stamped ``epoch``."""
        assert self._writable, "readers must not publish"
        buf = self._shm.buf
        struct.pack_into("<Q", buf, 24, self._tail_slots)  # published_slots
        struct.pack_into("<Q", buf, 32, epoch)

    def read_from(self, cursor_slots: int, upto_slots: int) -> List[str]:
        """Parse records in ``[cursor_slots, upto_slots)`` slot range."""
        buf = self._shm.buf
        records: List[str] = []
        slot = cursor_slots
        while slot < upto_slots:
            offset = _LOG_HEADER_BYTES + slot * self.slot_width
            (length,) = struct.unpack_from("<I", buf, offset)
            payload = bytes(buf[offset + 4 : offset + 4 + length])
            records.append(payload.decode("utf-8"))
            slot += self._slots_for(payload)
        if slot != upto_slots:
            raise SegmentCorrupt(
                f"string log {self.name!r}: record at slot {cursor_slots} "
                f"overruns published boundary {upto_slots} (ended at {slot})"
            )
        return records

    def wait_published(self, slots: int) -> None:
        """Block until at least ``slots`` slots are published."""
        deadline = time.monotonic() + _PUBLISH_WAIT_SECONDS
        while self.published_slots < slots:
            if time.monotonic() >= deadline:
                raise SegmentCorrupt(
                    f"string log {self.name!r}: publication of slot {slots} "
                    f"never arrived (at {self.published_slots})"
                )
            time.sleep(0.001)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover — double unlink
            pass


# ----------------------------------------------------------------------
# Per-worker result ring
# ----------------------------------------------------------------------
class RingSegment:
    """A single-writer blob ring with a coordinator-owned read cursor."""

    def __init__(self, segment, writable: bool):
        self._shm = segment
        self._writable = writable
        magic, version, capacity, vwrite, seq, _vread = _RING_HEADER.unpack_from(
            segment.buf, 0
        )
        if magic != _RING_MAGIC or version != _VERSION:
            raise SegmentCorrupt(
                f"segment {segment.name!r} is not a v{_VERSION} ring"
            )
        self.data_capacity = capacity
        self._vwrite = vwrite
        self._seq = seq

    @classmethod
    def create(cls, name: str, data_bytes: int = DEFAULT_RING_BYTES) -> "RingSegment":
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=_RING_HEADER_BYTES + data_bytes
        )
        _RING_HEADER.pack_into(
            segment.buf, 0, _RING_MAGIC, _VERSION, data_bytes, 0, 0, 0
        )
        return cls(segment, writable=False)

    @classmethod
    def attach_writer(cls, name: str) -> "RingSegment":
        ring = cls(_shared_memory.SharedMemory(name=name), writable=True)
        # Everything a previous (terminated) owner left in flight is
        # dead with its futures: start from a drained ring.
        struct.pack_into("<Q", ring._shm.buf, 32, ring._vwrite)  # vread
        return ring

    @classmethod
    def attach_reader(cls, name: str) -> "RingSegment":
        return cls(_shared_memory.SharedMemory(name=name), writable=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def _vread(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 32)[0]

    @staticmethod
    def _padded(length: int) -> int:
        return _FRAME_HEADER.size + ((length + 7) & ~7)

    def write_blob(self, payload: bytes) -> Optional[tuple]:
        """Append one blob; ``(voff, length, seq)`` or None if it won't fit."""
        assert self._writable
        frame = self._padded(len(payload))
        if frame > self.data_capacity:
            return None
        voff = self._vwrite
        phys = voff % self.data_capacity
        skip = 0
        if phys + frame > self.data_capacity:
            # Frames never wrap: skip the tail, start at physical 0.
            skip = self.data_capacity - phys
            voff += skip
            phys = 0
        used = voff + frame - self._vread
        if used > self.data_capacity:
            return None  # coordinator has not drained enough yet
        buf = self._shm.buf
        base = _RING_HEADER_BYTES + phys
        self._seq += 1
        _FRAME_HEADER.pack_into(buf, base, _FRAME_MAGIC, len(payload), self._seq)
        start = base + _FRAME_HEADER.size
        buf[start : start + len(payload)] = payload
        self._vwrite = voff + frame
        struct.pack_into("<QQ", buf, 16, self._vwrite, self._seq)
        return voff, len(payload), self._seq

    def read_blob(self, voff: int, length: int, seq: int) -> bytes:
        """Fetch and verify one frame, then advance the read cursor."""
        phys = voff % self.data_capacity
        base = _RING_HEADER_BYTES + phys
        buf = self._shm.buf
        magic, stored_len, stored_seq = _FRAME_HEADER.unpack_from(buf, base)
        if magic != _FRAME_MAGIC or stored_len != length or stored_seq != seq:
            raise SegmentCorrupt(
                f"ring {self.name!r}: frame at voff {voff} failed "
                f"verification (magic=0x{magic:08x} len={stored_len} "
                f"seq={stored_seq}, expected len={length} seq={seq})"
            )
        start = base + _FRAME_HEADER.size
        payload = bytes(buf[start : start + length])
        struct.pack_into("<Q", buf, 32, voff + self._padded(length))
        return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover — double unlink
            pass


# ----------------------------------------------------------------------
# Handles and planes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlobHandle:
    """What a worker returns instead of a pickled chunk outcome.

    ``slot >= 0`` points into that worker ring; ``slot == -1`` means the
    blob travels inline (ring missing, full, or blob oversized) — the
    bytes are identical either way.
    """

    slot: int
    voff: int = 0
    length: int = 0
    seq: int = 0
    inline: Optional[bytes] = None


def _finalize_unlink(names: Sequence[str], owner_pid: int) -> None:
    """GC/exit backstop: unlink, but only in the process that created.

    Forked workers inherit the coordinator's plane object; without the
    pid guard a *worker* exiting gracefully would unlink segments the
    fleet is still using.
    """
    if os.getpid() != owner_pid:
        return
    for name in names:
        _unlink_quietly(name)


class ShmDataPlane:
    """Coordinator-side owner of every segment in one pool's data plane."""

    def __init__(
        self,
        prefix: str,
        evidence: StringLogSegment,
        registry: StringLogSegment,
        rings: List[RingSegment],
    ):
        self.prefix = prefix
        self.evidence = evidence
        self.registry = registry
        self.rings = rings
        self._registry_epoch = 0
        self._unlinked = False
        self._claim_names = [f"{prefix}c{i}" for i in range(len(rings))]
        all_names = (
            [evidence.name, registry.name]
            + [ring.name for ring in rings]
            + list(self._claim_names)
        )
        self._finalizer = weakref.finalize(
            self, _finalize_unlink, tuple(all_names), os.getpid()
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        rings: int,
        evidence: Sequence[str] = (),
        evidence_slots: int = DEFAULT_EVIDENCE_SLOTS,
        registry_slots: int = DEFAULT_REGISTRY_SLOTS,
        ring_bytes: int = DEFAULT_RING_BYTES,
        slot_width: int = DEFAULT_SLOT_WIDTH,
    ) -> "ShmDataPlane":
        prefix = f"csod{os.getpid() & 0xFFFF:04x}{secrets.token_hex(3)}"
        created: List[object] = []
        try:
            evidence_log = StringLogSegment.create(
                f"{prefix}e", evidence_slots, slot_width
            )
            created.append(evidence_log)
            evidence_log.append(evidence)
            evidence_log.publish(epoch=0)
            registry_log = StringLogSegment.create(
                f"{prefix}g", registry_slots, slot_width
            )
            created.append(registry_log)
            ring_list = []
            for i in range(max(1, rings)):
                ring = RingSegment.create(f"{prefix}r{i}", ring_bytes)
                created.append(ring)
                ring_list.append(ring)
        except Exception:
            for segment in created:
                segment.unlink()
                segment.close()
            raise
        return cls(prefix, evidence_log, registry_log, ring_list)

    # ------------------------------------------------------------------
    def names(self) -> Dict[str, object]:
        """Everything a worker needs to attach, picklable."""
        return {
            "evidence": self.evidence.name,
            "registry": self.registry.name,
            "rings": [ring.name for ring in self.rings],
            "claim_prefix": f"{self.prefix}c",
        }

    @property
    def evidence_slots(self) -> int:
        return self.evidence.published_slots

    def evidence_append(self, signatures: Sequence[str], epoch: int) -> None:
        self.evidence.append(signatures)
        self.evidence.publish(epoch)

    def registry_append(self, signatures: Sequence[str]) -> None:
        self.registry.append(signatures)
        self._registry_epoch += 1
        self.registry.publish(self._registry_epoch)

    def fetch(self, handle: BlobHandle) -> bytes:
        if handle.inline is not None:
            return handle.inline
        if not 0 <= handle.slot < len(self.rings):
            raise SegmentCorrupt(f"blob handle names unknown ring {handle.slot}")
        return self.rings[handle.slot].read_blob(
            handle.voff, handle.length, handle.seq
        )

    # ------------------------------------------------------------------
    def reset_claims(self) -> None:
        """Free every ring claim (call only with all workers terminated)."""
        for name in self._claim_names:
            _unlink_quietly(name)

    def unlink(self) -> None:
        """Destroy every segment; idempotent, safe to call twice."""
        if self._unlinked:
            return
        self._unlinked = True
        self._finalizer.detach()
        self.reset_claims()
        for segment in [self.evidence, self.registry, *self.rings]:
            segment.unlink()
            segment.close()


class WorkerPlane:
    """Worker-side attachments plus incremental read cursors."""

    def __init__(self, names: Dict[str, object]):
        self.evidence = StringLogSegment.attach(str(names["evidence"]))
        self.registry = StringLogSegment.attach(str(names["registry"]))
        self._evidence_records: List[str] = []
        self._evidence_cursor = 0
        self._evidence_cache: Optional[FrozenSet[str]] = None
        self._registry_cursor = 0
        self.ring: Optional[RingSegment] = None
        self.slot = -1
        self._claim = None
        claim_prefix = str(names["claim_prefix"])
        ring_names = list(names["rings"])
        for i, ring_name in enumerate(ring_names):
            try:
                claim = _shared_memory.SharedMemory(
                    name=f"{claim_prefix}{i}", create=True, size=8
                )
            except FileExistsError:
                continue
            except Exception:  # noqa: BLE001 — no claims means inline blobs
                break
            try:
                self.ring = RingSegment.attach_writer(str(ring_name))
                self.slot = i
                self._claim = claim
            except Exception:  # noqa: BLE001 — ring gone: fall back inline
                claim.close()
            break

    # ------------------------------------------------------------------
    def evidence_at(self, slots: int) -> FrozenSet[str]:
        """The evidence set published at exactly ``slots`` slots."""
        if slots < self._evidence_cursor:
            raise SegmentCorrupt(
                f"evidence cursor moved backwards: chunk wants {slots}, "
                f"worker already parsed {self._evidence_cursor}"
            )
        if slots > self._evidence_cursor:
            self.evidence.wait_published(slots)
            self._evidence_records.extend(
                self.evidence.read_from(self._evidence_cursor, slots)
            )
            self._evidence_cursor = slots
            self._evidence_cache = None
        if self._evidence_cache is None:
            self._evidence_cache = frozenset(self._evidence_records)
        return self._evidence_cache

    def refresh_shipped(self, shipped: Set[str]) -> None:
        """Fold newly registered fleet-wide signatures into ``shipped``."""
        published = self.registry.published_slots
        if published > self._registry_cursor:
            shipped.update(
                self.registry.read_from(self._registry_cursor, published)
            )
            self._registry_cursor = published

    def ship(self, payload: bytes) -> BlobHandle:
        """Put one encoded chunk on the ring, or inline when it won't fit."""
        if self.ring is not None:
            written = self.ring.write_blob(payload)
            if written is not None:
                voff, length, seq = written
                return BlobHandle(slot=self.slot, voff=voff, length=length, seq=seq)
        return BlobHandle(slot=-1, inline=payload)
