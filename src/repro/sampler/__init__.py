"""A Sampler-style PMU access-sampling detector (related-work baseline).

The paper's §VII discusses Sampler [MICRO'18], concurrent work that
"utilizes PMU-based memory access sampling to detect buffer overflows
and use-after-frees, with similar overhead to that of CSOD.  However,
Sampler requires a custom memory allocator, and change of the underlying
OS."

The reproduction models that design point: a custom allocator pads every
object with a right-hand *tripwire zone*, and the PMU delivers every
Nth memory access to a handler that checks whether the sampled address
landed in any tripwire.  Detection therefore needs the overflowing
*access* to be the one sampled — a per-access lottery, where CSOD plays
a per-object lottery weighted by calling context.
"""

from repro.sampler.runtime import SamplerConfig, SamplerReport, SamplerRuntime

__all__ = ["SamplerConfig", "SamplerReport", "SamplerRuntime"]
