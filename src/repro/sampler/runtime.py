"""The PMU access-sampling runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import CallingContext
from repro.errors import ReproError
from repro.heap.interpose import RawHeap
from repro.machine.machine import Machine
from repro.machine.threads import SimThread

# Cost model: the PMU counts for free; each delivered sample costs an
# interrupt + handler walk.
PMU_SAMPLE_COST_NS = 1_800

TRIPWIRE_BYTES = 16


@dataclass(frozen=True)
class SamplerConfig:
    """PMU sampling period: one sample every N memory accesses."""

    sample_period: int = 10_000

    def __post_init__(self):
        if self.sample_period < 1:
            raise ReproError("sample_period must be >= 1")


@dataclass(frozen=True)
class SamplerReport:
    """One sampled access that landed in a tripwire zone."""

    fault_address: int
    object_address: int
    object_size: int
    access_kind: str
    thread_id: int
    allocation_context: CallingContext


class SamplerRuntime:
    """Custom allocator (tripwire zones) + PMU access sampling."""

    def __init__(
        self,
        machine: Machine,
        interposer,
        config: Optional[SamplerConfig] = None,
        seed: int = 0,
    ):
        from repro.core.rng import PerThreadRNG

        self.machine = machine
        self.config = config or SamplerConfig()
        self._raw: RawHeap = interposer.raw
        self._interposer = interposer
        self._backtracer = Backtracer(machine.ledger)
        # The PMU's sampling phase differs per run; derive it from seed.
        rng = PerThreadRNG(seed)
        self._sample_period = self.config.sample_period
        self._ledger = machine.ledger
        self._countdown = 1 + rng.below(1, self._sample_period)
        # object address -> (size, context)
        self._live: Dict[int, Tuple[int, CallingContext]] = {}
        self.reports: List[SamplerReport] = []
        self.accesses_seen = 0
        self.samples_taken = 0
        machine.cpu.add_access_hook(self._on_access)
        interposer.preload(self)

    # ------------------------------------------------------------------
    # The custom allocator: every object carries a tripwire zone
    # ------------------------------------------------------------------
    def malloc(self, thread: SimThread, size: int) -> int:
        address = self._raw.malloc(thread, size + TRIPWIRE_BYTES)
        frames = self._backtracer.full_frames(thread.call_stack)
        context = CallingContext(
            return_addresses=tuple(f.return_address for f in frames),
            frames=frames,
        )
        self._live[address] = (size, context)
        return address

    def memalign(self, thread: SimThread, alignment: int, size: int) -> int:
        address = self._raw.memalign(thread, alignment, size + TRIPWIRE_BYTES)
        frames = self._backtracer.full_frames(thread.call_stack)
        self._live[address] = (
            size,
            CallingContext(
                return_addresses=tuple(f.return_address for f in frames),
                frames=frames,
            ),
        )
        return address

    def free(self, thread: SimThread, address: int) -> None:
        self._live.pop(address, None)
        self._raw.free(thread, address)

    def usable_size(self, address: int) -> int:
        entry = self._live.get(address)
        if entry is not None:
            return entry[0]
        return self._raw.usable_size(address)

    # ------------------------------------------------------------------
    # PMU sampling
    # ------------------------------------------------------------------
    def _on_access(self, thread: SimThread, address: int, size: int, kind: str):
        # This hook runs on every simulated load/store; everything up to
        # the (rare) sample delivery is a decrement and one compare.
        self.accesses_seen += 1
        countdown = self._countdown - 1
        if countdown > 0:
            self._countdown = countdown
            return
        self._countdown = self._sample_period
        self.samples_taken += 1
        self._ledger.record("sampler.pmu_sample", nanos_each=PMU_SAMPLE_COST_NS)
        self._check_sample(thread, address, size, kind)

    def _check_sample(self, thread, address, size, kind) -> None:
        for base, (length, context) in self._live.items():
            zone_start = base + length
            zone_end = zone_start + TRIPWIRE_BYTES
            if address < zone_end and zone_start < address + size:
                self.reports.append(
                    SamplerReport(
                        fault_address=address,
                        object_address=base,
                        object_size=length,
                        access_kind=kind,
                        thread_id=thread.tid,
                        allocation_context=context,
                    )
                )
                return

    @property
    def detected(self) -> bool:
        return bool(self.reports)

    def shutdown(self) -> None:
        self.machine.cpu.remove_access_hook(self._on_access)
        self._interposer.unload()
