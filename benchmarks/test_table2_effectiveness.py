"""Table II — detection effectiveness over repeated executions.

The paper ran each application 1,000 times per replacement policy; the
default here is ``CSOD_BENCH_RUNS`` (100) so the bench finishes in a few
minutes of pure Python.  Expected shape: the naive policy detects
{gzip, libdwarf, libhx, libtiff, polymorph} always and the other four
never; random/near-FIFO land in the 10-100% band with ~50-60% average.
"""

from conftest import TABLE2_RUNS, once

from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.experiments.effectiveness import (
    average_detection_rate,
    render_table2,
    run_table2,
)


def test_table2_effectiveness(benchmark, artifact):
    rows = once(benchmark, lambda: run_table2(runs=TABLE2_RUNS))
    table = render_table2(rows)
    artifact("table2.txt", table)

    by_app = {row.app: row for row in rows}
    # Naive-policy split (§V-A1).
    for name in ("gzip", "libdwarf", "libhx", "libtiff", "polymorph"):
        assert by_app[name].rate(POLICY_NAIVE) == 1.0, name
    for name in ("heartbleed", "memcached", "mysql", "zziplib"):
        assert by_app[name].rate(POLICY_NAIVE) == 0.0, name
    # Adaptive policies detect every bug sometimes, within the band.
    for row in rows:
        for policy in (POLICY_RANDOM, POLICY_NEAR_FIFO):
            assert 0.03 <= row.rate(policy) <= 1.0, (row.app, policy)
    # "58% on average" — allow a generous band at reduced run counts.
    average = average_detection_rate(rows, POLICY_RANDOM)
    assert 0.45 <= average <= 0.72, average
