"""Ablation 1 — replacement policy shoot-out (design choice §III-C2).

Runs the three policies on the two applications where they diverge the
most (libdwarf: early victim under long pressure; memcached: late
victim), plus a microbenchmark of the watch-decision hot path.
"""

from conftest import once

from repro.core import CSODConfig, CSODRuntime
from repro.core.config import POLICY_NAIVE, POLICY_NEAR_FIFO, POLICY_RANDOM
from repro.experiments.effectiveness import run_table2
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.perf import perf_app_for

POLICIES = (POLICY_NAIVE, POLICY_RANDOM, POLICY_NEAR_FIFO)


def test_ablation_policy_detection(benchmark, artifact):
    rows = once(
        benchmark,
        lambda: run_table2(runs=60, apps=["libdwarf", "memcached"]),
    )
    body = [
        [row.app] + [f"{row.rate(p):.1%}" for p in POLICIES] for row in rows
    ]
    artifact(
        "ablation_policies.txt",
        render_table(
            ["Application", "naive", "random", "near-FIFO"],
            body,
            title="Ablation — replacement policy vs detection rate",
        ),
    )
    by_app = {row.app: row for row in rows}
    # The ablation's point: no policy dominates both shapes.
    assert by_app["libdwarf"].rate(POLICY_NAIVE) == 1.0
    assert by_app["libdwarf"].rate(POLICY_RANDOM) < 1.0
    assert by_app["memcached"].rate(POLICY_NAIVE) == 0.0
    assert by_app["memcached"].rate(POLICY_RANDOM) > 0.0


def test_policy_hot_path_throughput(benchmark):
    """Allocations/second through the full CSOD malloc path."""
    app = perf_app_for("vips", 3000)

    def run_once():
        process = SimProcess(seed=3)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(replacement_policy=POLICY_NEAR_FIFO),
            seed=3,
        )
        app.run(process, csod)
        csod.shutdown()

    benchmark.pedantic(run_once, iterations=1, rounds=3)
