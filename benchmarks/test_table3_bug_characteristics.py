"""Table III — characteristics of the buggy applications (full scale)."""

from conftest import once

from repro.experiments import paper_data
from repro.experiments.characteristics import render_table3, run_table3


def test_table3_bug_characteristics(benchmark, artifact):
    rows = once(benchmark, run_table3)
    artifact("table3.txt", render_table3(rows))

    for row in rows:
        paper = paper_data.TABLE3[row.app]
        if row.app == "heartbleed":
            # The paper names more post-overflow contexts than there are
            # post-overflow allocations; the surplus cannot materialize.
            assert row.before_contexts == paper[2]
            assert row.before_allocations == paper[3]
        elif row.app == "libhx":
            # Documented deviation: the access is placed after the
            # remaining allocations to preserve the Table II dynamics.
            assert row.total_contexts == paper[0]
            assert row.total_allocations == paper[1]
        else:
            assert (
                row.total_contexts,
                row.total_allocations,
                row.before_contexts,
                row.before_allocations,
            ) == paper
