"""Oracle throughput — generated apps judged per second, 1 vs N workers.

The oracle is only useful at fleet scale if generating and judging a
program is cheap next to executing it.  This bench times the two
stages separately: pure generation (grammar draw + schedule build +
manifest) and the full differential campaign (three CSOD arms through
the fleet pool, ASan + guard pages inline, invariant probe per app),
once with 1 worker and once with several, into ``BENCH_oracle.json``.
"""

import json
import pathlib
import time

from conftest import once

from repro.oracle.generator import generate
from repro.oracle.runner import OracleSettings, defect_sequence, run_oracle

REPO_ROOT = pathlib.Path(__file__).parent.parent

GENERATE_ONLY = 60  # programs for the generation-rate stage
BUDGET = 18  # programs for the full-campaign stages
PARALLEL_WORKERS = 2


def test_oracle_throughput(benchmark, artifact):
    def run():
        # Stage 1: generation alone (the grammar's own cost).
        start = time.perf_counter()
        programs = [
            generate(1, index, defect)
            for index, defect in enumerate(defect_sequence(GENERATE_ONLY))
        ]
        generate_seconds = time.perf_counter() - start

        # Stage 2: full campaign, serial.
        start = time.perf_counter()
        serial = run_oracle(
            OracleSettings(
                budget=BUDGET, seed=1, workers=1, executions_per_app=1
            )
        )
        serial_seconds = time.perf_counter() - start

        # Stage 3: same campaign, parallel workers.
        start = time.perf_counter()
        parallel = run_oracle(
            OracleSettings(
                budget=BUDGET,
                seed=1,
                workers=PARALLEL_WORKERS,
                executions_per_app=1,
            )
        )
        parallel_seconds = time.perf_counter() - start
        return (
            programs,
            serial,
            parallel,
            generate_seconds,
            serial_seconds,
            parallel_seconds,
        )

    (
        programs,
        serial,
        parallel,
        generate_seconds,
        serial_seconds,
        parallel_seconds,
    ) = once(benchmark, run)

    # Correctness gates: same campaign, worker-count-invariant verdicts.
    assert len(programs) == GENERATE_ONLY
    assert serial.scorecard == parallel.scorecard
    assert serial.scorecard["mismatches"]["unexplained"] == 0

    generated_per_sec = GENERATE_ONLY / generate_seconds
    serial_apps_per_sec = BUDGET / serial_seconds
    parallel_apps_per_sec = BUDGET / parallel_seconds
    lines = [
        f"oracle throughput: {BUDGET} generated apps, "
        f"{len(serial.scorecard['arms'])} detector arms",
        f"  generation: {generate_seconds:8.3f} s "
        f"({generated_per_sec:8.1f} programs/s)",
        f"  campaign x1 worker:  {serial_seconds:8.3f} s "
        f"({serial_apps_per_sec:6.2f} apps/s)",
        f"  campaign x{PARALLEL_WORKERS} workers: {parallel_seconds:8.3f} s "
        f"({parallel_apps_per_sec:6.2f} apps/s)",
    ]
    artifact("oracle_throughput.txt", "\n".join(lines))

    payload = {
        "benchmark": "oracle",
        "generated_programs": GENERATE_ONLY,
        "budget": BUDGET,
        "parallel_workers": PARALLEL_WORKERS,
        "generate_seconds": round(generate_seconds, 4),
        "generated_per_sec": round(generated_per_sec, 1),
        "serial_seconds": round(serial_seconds, 4),
        "serial_apps_per_sec": round(serial_apps_per_sec, 2),
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_apps_per_sec": round(parallel_apps_per_sec, 2),
        "scorecards_identical": True,
    }
    (REPO_ROOT / "BENCH_oracle.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Generation must stay negligible next to execution.
    assert generate_seconds < serial_seconds
