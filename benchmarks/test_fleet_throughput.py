"""Fleet throughput — campaign wall-clock at 1, 2, and 4 workers.

The fleet subsystem's reason to exist: the 1,000-execution protocol was
the slowest path in the repo because ``campaign.py`` ran every execution
serially in one interpreter.  This bench times the same campaign through
``run_fleet`` at one, two, and four workers and records per-row
throughput and speedup-vs-serial into ``BENCH_fleet.json``.

The pool is persistent (one executor per campaign, chunked dispatch,
lean result payloads), so the parallel rows carry one fork + one IPC
round trip per worker — on a multi-core runner speedup is near-linear
in ``min(workers, cores)``.  On a single-core runner no worker count
can beat serial (the work is CPU-bound and identical), so the speedup
assertions gate only where the hardware can express them; what gates
everywhere is correctness (byte-identical aggregated results at every
worker count) and bounded parallel overhead.
"""

import json
import os
import pathlib
import time

from conftest import once

from repro.experiments.campaign import wilson_interval
from repro.fleet import run_fleet

APP = "libtiff"
EXECUTIONS = 32
WORKER_COUNTS = (1, 2, 4)

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _timed_fleet(workers: int):
    start = time.perf_counter()
    result = run_fleet(APP, executions=EXECUTIONS, workers=workers)
    return result, time.perf_counter() - start


def test_fleet_throughput(benchmark, artifact):
    def run():
        run_fleet(APP, executions=2, workers=1)  # warm app/schedule caches
        return {w: _timed_fleet(w) for w in WORKER_COUNTS}

    runs = once(benchmark, run)
    serial, serial_s = runs[1]

    # Parallelism must never change what the fleet finds.
    for workers, (result, _) in runs.items():
        assert result.aggregator.to_dict() == serial.aggregator.to_dict(), (
            f"aggregated results at workers={workers} diverged from serial"
        )
        assert result.detections == serial.detections

    cpus = os.cpu_count() or 1
    hits = serial.aggregator.executions_detected
    lo, hi = wilson_interval(hits, EXECUTIONS)

    rows = []
    lines = [
        f"fleet throughput: {APP} x {EXECUTIONS} executions ({cpus} cpus)"
    ]
    for workers, (result, seconds) in runs.items():
        speedup = serial_s / seconds if seconds else float("inf")
        rows.append(
            {
                "workers": workers,
                "seconds": round(seconds, 3),
                "execs_per_sec": round(EXECUTIONS / seconds, 2),
                "speedup_vs_serial": round(speedup, 2),
            }
        )
        lines.append(
            f"  {workers} worker(s): {seconds:8.3f} s "
            f"({EXECUTIONS / seconds:6.1f} exec/s, {speedup:.2f}x vs serial)"
        )
    lines += [
        f"  detection rate: {hits}/{EXECUTIONS} "
        f"(95% CI [{lo:.1%}, {hi:.1%}])",
        f"  unique reports: {serial.aggregator.unique_reports()} "
        f"(dedup {serial.aggregator.dedup_ratio:.1f}x)",
    ]
    artifact("fleet_throughput.txt", "\n".join(lines))

    two_worker = next(r for r in rows if r["workers"] == 2)
    payload = {
        "benchmark": "fleet",
        "app": APP,
        "executions": EXECUTIONS,
        "cpus": cpus,
        "rows": rows,
        "speedup_parallel_vs_serial": two_worker["speedup_vs_serial"],
        "detection": {
            "detected": hits,
            "executions": EXECUTIONS,
            "wilson_95": [round(lo, 4), round(hi, 4)],
        },
        "unique_reports": serial.aggregator.unique_reports(),
        "identical_results_across_workers": True,
    }
    (REPO_ROOT / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert serial.aggregator.executions_detected > 0
    # The persistent pool must keep parallel overhead bounded even on
    # one core: with fork-per-wave dispatch the 2-worker row ran ~2.4x
    # *slower* than serial on a single-core box; chunked persistent
    # dispatch keeps it within a small constant factor everywhere.
    for row in rows:
        assert row["seconds"] < serial_s * 2.0, row
    # Where the hardware has the cores, parallelism must actually pay.
    if cpus >= 2:
        assert two_worker["speedup_vs_serial"] >= 1.2, rows
    if cpus >= 4:
        four_worker = next(r for r in rows if r["workers"] == 4)
        assert four_worker["seconds"] <= two_worker["seconds"] * 1.1, rows
