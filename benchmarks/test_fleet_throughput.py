"""Fleet throughput — both data planes at 1, 2, and 4 workers.

The fleet subsystem's reason to exist: the 1,000-execution protocol was
the slowest path in the repo because ``campaign.py`` ran every execution
serially in one interpreter.  This bench times the same campaign through
``run_fleet`` across the full wire × workers matrix — the fully-pickled
legacy plane against the shared-memory plane (zero-copy evidence +
binary result rows) — and records per-row throughput and
speedup-vs-serial into ``BENCH_fleet.json``.

CPU accounting uses ``os.sched_getaffinity`` (not ``os.cpu_count``) so
a CI leg pinned with ``taskset -c 0,1`` gates against the cores it can
actually use.  On a single-core runner no worker count can beat serial
(the work is CPU-bound and identical), so the speedup assertions gate
only where the hardware can express them; what gates everywhere is
correctness — byte-identical aggregated results across every wire and
worker count — and bounded parallel overhead.

``speedup_floor`` in the payload is the ratchet: the 2-worker shm-wire
speedup a multi-core runner must reach (CI fails below it).
"""

import json
import os
import pathlib
import time

from conftest import once

from repro.experiments.campaign import wilson_interval
from repro.fleet import WIRE_PICKLE, WIRE_SHM, run_fleet, shm_supported

APP = "libtiff"
EXECUTIONS = 32
WORKER_COUNTS = (1, 2, 4)
WIRES_UNDER_TEST = (WIRE_PICKLE, WIRE_SHM)
# The 2-worker shm-wire speedup a >=2-core runner must reach.
SPEEDUP_FLOOR = 1.2

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def _timed_fleet(wire: str, workers: int):
    start = time.perf_counter()
    result = run_fleet(APP, executions=EXECUTIONS, workers=workers, wire=wire)
    return result, time.perf_counter() - start


def test_fleet_throughput(benchmark, artifact):
    def run():
        run_fleet(APP, executions=2, workers=1)  # warm app/schedule caches
        return {
            (wire, workers): _timed_fleet(wire, workers)
            for wire in WIRES_UNDER_TEST
            for workers in WORKER_COUNTS
        }

    runs = once(benchmark, run)
    serial, serial_s = runs[(WIRE_PICKLE, 1)]

    # Neither parallelism nor the wire may change what the fleet finds.
    serial_dict = serial.aggregator.to_dict()
    for (wire, workers), (result, _) in runs.items():
        assert result.aggregator.to_dict() == serial_dict, (
            f"aggregated results at wire={wire} workers={workers} "
            f"diverged from serial pickle"
        )
        assert result.detections == serial.detections

    cpus = _cpus()
    hits = serial.aggregator.executions_detected
    lo, hi = wilson_interval(hits, EXECUTIONS)

    rows = []
    lines = [
        f"fleet throughput: {APP} x {EXECUTIONS} executions "
        f"({cpus} cpus, shm {'yes' if shm_supported() else 'NO'})"
    ]
    for (wire, workers), (result, seconds) in runs.items():
        speedup = serial_s / seconds if seconds else float("inf")
        rows.append(
            {
                "wire": wire,
                "workers": workers,
                "seconds": round(seconds, 3),
                "execs_per_sec": round(EXECUTIONS / seconds, 2),
                "speedup_vs_serial": round(speedup, 2),
            }
        )
        lines.append(
            f"  {wire:>6} wire, {workers} worker(s): {seconds:8.3f} s "
            f"({EXECUTIONS / seconds:6.1f} exec/s, {speedup:.2f}x vs serial)"
        )
    lines += [
        f"  detection rate: {hits}/{EXECUTIONS} "
        f"(95% CI [{lo:.1%}, {hi:.1%}])",
        f"  unique reports: {serial.aggregator.unique_reports()} "
        f"(dedup {serial.aggregator.dedup_ratio:.1f}x)",
    ]
    artifact("fleet_throughput.txt", "\n".join(lines))

    def row(wire, workers):
        return next(
            r for r in rows if r["wire"] == wire and r["workers"] == workers
        )

    shm_two = row(WIRE_SHM, 2)
    payload = {
        "benchmark": "fleet",
        "app": APP,
        "executions": EXECUTIONS,
        "cpus": cpus,
        "shm_supported": shm_supported(),
        "rows": rows,
        "speedup_parallel_vs_serial": shm_two["speedup_vs_serial"],
        "speedup_floor": SPEEDUP_FLOOR,
        "detection": {
            "detected": hits,
            "executions": EXECUTIONS,
            "wilson_95": [round(lo, 4), round(hi, 4)],
        },
        "unique_reports": serial.aggregator.unique_reports(),
        "identical_results_across_workers": True,
        "identical_results_across_wires": True,
    }
    (REPO_ROOT / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert serial.aggregator.executions_detected > 0
    # The persistent pool must keep parallel overhead bounded even on
    # one core: with fork-per-wave dispatch the 2-worker row ran ~2.4x
    # *slower* than serial on a single-core box; chunked persistent
    # dispatch keeps it within a small constant factor everywhere.
    for entry in rows:
        assert entry["seconds"] < serial_s * 2.0, entry
    # Where the hardware has the cores, parallelism must actually pay —
    # this is the ratchet the taskset-pinned CI leg enforces.
    if cpus >= 2 and shm_supported():
        assert shm_two["speedup_vs_serial"] >= SPEEDUP_FLOOR, rows
        # The shm wire exists to beat the pickle wire's dispatch
        # overhead; it must never be materially slower at equal width.
        assert shm_two["seconds"] <= row(WIRE_PICKLE, 2)["seconds"] * 1.15, rows
    if cpus >= 4:
        assert (
            row(WIRE_SHM, 4)["seconds"] <= shm_two["seconds"] * 1.1
        ), rows
