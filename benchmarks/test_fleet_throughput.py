"""Fleet throughput — serial vs. parallel campaign wall-clock.

The fleet subsystem's reason to exist: the 1,000-execution protocol was
the slowest path in the repo because ``campaign.py`` ran every execution
serially in one interpreter.  This bench times the same campaign through
``run_fleet`` at one and two workers and records the speedup.  On a
single-core runner the 2-worker fleet only amortises fork overhead, so
the assertion is on correctness (identical aggregated results) and on
parallel overhead staying bounded, not on a mandatory speedup.
"""

import json
import pathlib
import time

from conftest import once

from repro.experiments.campaign import wilson_interval
from repro.fleet import run_fleet

APP = "libtiff"
EXECUTIONS = 32

REPO_ROOT = pathlib.Path(__file__).parent.parent


def _timed_fleet(workers: int):
    start = time.perf_counter()
    result = run_fleet(APP, executions=EXECUTIONS, workers=workers)
    return result, time.perf_counter() - start


def test_fleet_throughput(benchmark, artifact):
    def run():
        serial, serial_s = _timed_fleet(workers=1)
        parallel, parallel_s = _timed_fleet(workers=2)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = once(benchmark, run)

    # Parallelism must never change what the fleet finds.
    assert serial.aggregator.to_dict() == parallel.aggregator.to_dict()

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    hits = serial.aggregator.executions_detected
    lo, hi = wilson_interval(hits, EXECUTIONS)
    lines = [
        f"fleet throughput: {APP} x {EXECUTIONS} executions",
        f"  serial   (1 worker):  {serial_s:8.3f} s "
        f"({EXECUTIONS / serial_s:6.1f} exec/s)",
        f"  parallel (2 workers): {parallel_s:8.3f} s "
        f"({EXECUTIONS / parallel_s:6.1f} exec/s)",
        f"  speedup: {speedup:.2f}x",
        f"  detection rate: {hits}/{EXECUTIONS} "
        f"(95% CI [{lo:.1%}, {hi:.1%}])",
        f"  unique reports: {serial.aggregator.unique_reports()} "
        f"(dedup {serial.aggregator.dedup_ratio:.1f}x)",
    ]
    artifact("fleet_throughput.txt", "\n".join(lines))

    payload = {
        "benchmark": "fleet",
        "app": APP,
        "executions": EXECUTIONS,
        "serial": {
            "workers": 1,
            "seconds": round(serial_s, 3),
            "execs_per_sec": round(EXECUTIONS / serial_s, 2),
        },
        "parallel": {
            "workers": 2,
            "seconds": round(parallel_s, 3),
            "execs_per_sec": round(EXECUTIONS / parallel_s, 2),
        },
        "speedup_parallel_vs_serial": round(speedup, 2),
        "detection": {
            "detected": hits,
            "executions": EXECUTIONS,
            "wilson_95": [round(lo, 4), round(hi, 4)],
        },
        "unique_reports": serial.aggregator.unique_reports(),
        "identical_results_across_workers": True,
    }
    (REPO_ROOT / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The process pool must not catastrophically regress the campaign
    # even on one core (fork + pickling overhead stays bounded).
    assert parallel_s < serial_s * 5
    assert serial.aggregator.executions_detected > 0
