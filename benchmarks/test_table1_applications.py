"""Table I — the nine buggy applications."""

from conftest import once

from repro.experiments.effectiveness import render_table1


def test_table1_applications(benchmark, artifact):
    table = once(benchmark, render_table1)
    artifact("table1.txt", table)
    assert "heartbleed" in table
