"""Ablation 3 — cheap context keying vs full backtraces (§III-A1).

CSOD keys contexts by (first-level return address, stack offset) and
pays for a full ``backtrace`` only on first sight.  This bench measures
the hot-path cost both ways on a MySQL-shaped trace (1,186 contexts,
deep reuse) — the trade the paper justifies with exactly this workload
class.
"""

from conftest import once

from repro.callstack.backtrace import Backtracer
from repro.callstack.contexts import ContextInterner
from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.machine.syscall_cost import CostLedger, EVENT_BACKTRACE_FULL
from repro.workloads.base import SimProcess
from repro.workloads.perf import perf_app_for


def measure_cheap_keying(cap=6000):
    process = SimProcess(seed=3)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=3)
    measurement = perf_app_for("mysql", cap).run(process, csod)
    csod.shutdown()
    lookups = measurement.count("csod.context_lookup")
    unwinds = measurement.count("libc.backtrace")
    hot_ns = (
        measurement.nanos("csod.context_lookup")
        + measurement.nanos("callstack.peek")
        + measurement.nanos("libc.backtrace")
    )
    return lookups, unwinds, hot_ns


def measure_always_unwinding(cap=6000):
    """What the hot path would cost if every allocation unwound fully."""
    app = perf_app_for("mysql", cap)
    ledger = CostLedger()
    tracer = Backtracer(ledger)
    process = SimProcess(seed=3)
    sites = app.sites()
    thread = process.main_thread
    for event in app._trace:
        chain = sites[event.context_id]
        guards = [thread.call_stack.calling(site) for site in chain]
        for guard in guards:
            guard.__enter__()
        tracer.full_backtrace(thread.call_stack)
        for guard in reversed(guards):
            guard.__exit__(None, None, None)
    return ledger.count(EVENT_BACKTRACE_FULL), ledger.total_nanos()


def test_ablation_context_key(benchmark, artifact):
    def run():
        cheap = measure_cheap_keying()
        naive = measure_always_unwinding()
        return cheap, naive

    (lookups, unwinds, cheap_ns), (naive_unwinds, naive_ns) = once(benchmark, run)
    table = render_table(
        ["Strategy", "full unwinds", "hot-path ns / alloc"],
        [
            ["cheap key + intern (CSOD)", unwinds, f"{cheap_ns / lookups:.0f}"],
            ["backtrace every alloc", naive_unwinds, f"{naive_ns / naive_unwinds:.0f}"],
        ],
        title="Ablation — context identification cost (MySQL trace)",
    )
    artifact("ablation_context_key.txt", table)
    # CSOD unwinds once per distinct context, not once per allocation.
    assert unwinds <= 1200  # ~#contexts
    assert naive_unwinds == 6000
    # The cheap path must beat per-allocation unwinding even at this
    # shallow (3-frame) trace depth; real stacks are deeper and the full
    # unwind cost grows linearly with depth while the key stays O(1).
    assert cheap_ns / lookups < (naive_ns / naive_unwinds) / 2
