"""Service throughput — queue ingest rate, event latency, fairness.

Three service-level qualities, measured over real HTTP against an
in-process :class:`ServiceThread` with a single shared worker slot (so
the two concurrent campaigns genuinely contend and the FIFO-fair
scheduler's interleaving is observable, not an accident of timing):

* **Event latency** — wall time from an event's bus timestamp to its
  arrival at an SSE subscriber, p50/p95, while two campaigns stream
  waves concurrently.
* **Queue fairness** — how strictly the scheduler interleaves the wave
  stream of two equal-width tenants: the fraction of adjacent wave
  events owned by different jobs (1.0 = perfect alternation, 0.0 =
  run-to-completion).
* **Queue throughput** — single-submission POSTs per second (each one
  validates, admits, and answers with the job's status view).  The
  admission path must comfortably outrun any realistic tenant; the
  floor asserted here is 20 submissions/s.

Everything lands in ``BENCH_service.json`` at the repo root.
"""

import json
import pathlib
import threading
import time

from conftest import once

from repro.service import CampaignSubmission, ServiceClient, ServiceThread

REPO_ROOT = pathlib.Path(__file__).parent.parent

INGEST_SUBMISSIONS = 60
CAMPAIGNS = [
    CampaignSubmission(app="gzip", executions=16, seed=3),
    CampaignSubmission(app="libtiff", executions=16, seed=5),
]


def percentile(values, q):
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))
    return ordered[int(rank) - 1]


def test_service_throughput(benchmark, artifact):
    with ServiceThread(total_workers=1) as thread:
        client = ServiceClient(port=thread.port)

        def run():
            # -- Event latency + fairness: two live campaigns, one SSE
            # subscriber on the firehose stamping arrival times.
            latencies_ms = []
            wave_owners = []
            done = threading.Event()

            def consume(since):
                finished = set()
                for event in client.stream_events("firehose", since=since):
                    latencies_ms.append(
                        max(0.0, (time.time() - event["ts"]) * 1e3)
                    )
                    if event["event"] == "wave":
                        wave_owners.append(event["job_id"])
                    if (
                        event["event"] == "job"
                        and event.get("state") in ("completed", "failed")
                    ):
                        finished.add(event["job_id"])
                        if len(finished) == len(CAMPAIGNS):
                            done.set()
                            return

            since = client.poll_events("firehose", 0, timeout=0.1)[1]
            consumer = threading.Thread(
                target=consume, args=(since,), daemon=True
            )
            consumer.start()
            jobs = client.submit_batch(CAMPAIGNS)
            client.wait([job["job_id"] for job in jobs], timeout=240)
            done.wait(timeout=30)

            # -- Queue throughput: timed single-submission POSTs, after
            # the campaigns so admission timing is undisturbed by their
            # waves.  Each probe is one execution; all are cancelled
            # right after the clock stops.
            probe = CampaignSubmission(app="gzip", executions=1)
            start = time.perf_counter()
            queued = [
                client.submit(probe) for _ in range(INGEST_SUBMISSIONS)
            ]
            ingest_seconds = time.perf_counter() - start
            for job in queued:
                client.cancel(job["job_id"])
            return ingest_seconds, latencies_ms, wave_owners

        ingest_seconds, latencies_ms, wave_owners = once(benchmark, run)

    submissions_per_sec = INGEST_SUBMISSIONS / ingest_seconds
    p50 = percentile(latencies_ms, 50)
    p95 = percentile(latencies_ms, 95)
    switches = sum(
        1 for a, b in zip(wave_owners, wave_owners[1:]) if a != b
    )
    fairness = switches / max(1, len(wave_owners) - 1)

    lines = [
        f"service throughput: {INGEST_SUBMISSIONS} submissions in "
        f"{ingest_seconds:.3f} s ({submissions_per_sec:.1f}/s)",
        f"  event latency: p50={p50:.1f} ms p95={p95:.1f} ms "
        f"({len(latencies_ms)} events)",
        f"  queue fairness: {switches}/{len(wave_owners) - 1} adjacent "
        f"wave switches ({fairness:.2f})",
    ]
    artifact("service_throughput.txt", "\n".join(lines))

    payload = {
        "benchmark": "service",
        "submissions": INGEST_SUBMISSIONS,
        "ingest_seconds": round(ingest_seconds, 4),
        "submissions_per_sec": round(submissions_per_sec, 1),
        "events_observed": len(latencies_ms),
        "event_latency_p50_ms": round(p50, 2),
        "event_latency_p95_ms": round(p95, 2),
        "wave_events": len(wave_owners),
        "fairness_switches": switches,
        "fairness_switch_ratio": round(fairness, 3),
        "concurrent_campaigns": len(CAMPAIGNS),
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The acceptance floor: queue admission must sustain >= 20/s.
    assert submissions_per_sec >= 20.0
    assert latencies_ms, "SSE subscriber saw no events"
    # Two equal tenants contending for one slot must interleave:
    # FIFO-fair leasing alternates their waves rather than letting the
    # first admitted job run to completion.
    assert len(wave_owners) == 16
    assert fairness >= 0.5
