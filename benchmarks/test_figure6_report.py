"""Fig. 6 — the dual-context Heartbleed bug report."""

from conftest import once

from repro.experiments.effectiveness import figure6_report


def test_figure6_report(benchmark, artifact):
    report = once(benchmark, figure6_report)
    artifact("figure6.txt", report)
    assert report.startswith("A buffer over-read problem is detected at:")
    assert "This object is allocated at:" in report
    assert "OPENSSL" in report
