"""Ablation 6 — the reviving mechanism (§IV-A).

"It is possible that objects from one calling context do not have
overflows across multiple watches, then suddenly one object from this
context is overflowed due to a different input."  The workload models
that: the buggy context allocates heavily early (its probability grinds
to the floor), then — much later in a long run — one of its objects
overflows.

The measured dose-response is itself a finding: reviving is strictly
monotone in the boost probability, but at the paper's own setting
(boost to 0.01%) the per-execution gain over "off" is tiny — consistent
with the paper's hedged claim that reviving only "*partially* handles
the issues caused by different inputs".  It becomes material only at
crowdsourcing-scale execution counts.
"""

from conftest import once

from repro.analysis import estimate_detection_rate
from repro.core import CSODConfig
from repro.experiments.tables import render_table
from repro.workloads.base import BuggyAppSpec

# A long-running service whose buggy context is ground to the floor
# before the overflow: 400 allocations over ~200 virtual seconds.
INPUT_DEPENDENT = BuggyAppSpec(
    name="inputdep",
    bug_kind="over-write",
    vuln_module="INPUTDEP",
    reference="ablation",
    total_contexts=10,
    total_allocations=400,
    before_contexts=10,
    before_allocations=400,
    victim_alloc_index=390,
    victim_context_prior_allocs=150,  # grinds ctx0 to the floor
    churn=0.8,
    churn_lifetime=16,
    work_ns_per_alloc=500_000_000,  # 0.5 s per allocation
    structural_seed=41,
)

RUNS = 2500

GRID = (
    ("off", 0.0, 0.0),
    ("paper (boost to 0.01%)", 1.0, 1e-4),
    ("boost to 1%", 1.0, 1e-2),
    ("boost to 10%", 1.0, 1e-1),
)


def sweep():
    rows = []
    for label, chance, probability in GRID:
        config = CSODConfig(
            replacement_policy="random",
            revive_chance=chance,
            revive_probability=probability,
            revive_period_seconds=20.0,
        )
        rate = estimate_detection_rate(INPUT_DEPENDENT, config, runs=RUNS)
        rows.append((label, rate))
    return rows


def test_ablation_reviving(benchmark, artifact):
    rows = once(benchmark, sweep)
    artifact(
        "ablation_reviving.txt",
        render_table(
            ["reviving", "detection rate"],
            [[label, f"{rate:.2%}"] for label, rate in rows],
            title=(
                "Ablation — reviving dose-response (input-dependent "
                f"overflow, {RUNS} abstract runs)"
            ),
        ),
    )
    rates = dict(rows)
    # Monotone in the boost, and materially helpful at strong boosts.
    assert rates["off"] <= rates["paper (boost to 0.01%)"] + 0.01
    assert rates["boost to 10%"] >= rates["boost to 1%"] >= rates["off"]
    assert rates["boost to 10%"] > rates["off"] + 0.02
