"""§I / §VI claim — every bug is caught across enough executions.

"CSOD did not miss any overflows when considering the 1,000 executions
together."  This bench runs a campaign per application and requires
a first detection within the budget, plus prints rates with Wilson
confidence intervals and the evidence-sharing acceleration for
over-writes.
"""

from conftest import once

from repro.experiments.campaign import render_campaigns, run_campaign
from repro.workloads.buggy import BUGGY_APPS

EXECUTIONS = 80


def test_campaign_convergence(benchmark, artifact):
    def run():
        results = [
            run_campaign(name, executions=EXECUTIONS)
            for name in sorted(BUGGY_APPS)
        ]
        results.append(
            run_campaign("memcached", executions=EXECUTIONS, share_evidence=True)
        )
        return results

    results = once(benchmark, run)
    artifact("campaign_convergence.txt", render_campaigns(results))

    for result in results:
        assert result.first_detection is not None, result.app
        lo, hi = result.rate_interval
        assert lo <= result.rate <= hi
    shared = results[-1]
    independent = next(r for r in results if r.app == "memcached")
    assert shared.hits > independent.hits
