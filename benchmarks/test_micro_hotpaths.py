"""Microbenchmarks of the runtime's hot paths.

Classic pytest-benchmark timing (many rounds) of the operations whose
unit costs the overhead model calibrates: the interposed malloc/free
pair under CSOD, the context-intern hit path, a watched vs unwatched
store, and ASan's shadow check.  These put real Python numbers next to
the modelled nanosecond costs.
"""

import pytest

from repro.asan.shadow import ShadowMemory, TAG_REDZONE
from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


@pytest.fixture
def csod_process():
    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    site = CallSite("BENCH", "hot.c", 1, "hot_alloc")
    process.main_thread.call_stack.push(site)
    return process, csod


def test_malloc_free_pair_under_csod(benchmark, csod_process):
    process, _csod = csod_process
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_malloc_free_pair_raw(benchmark):
    process = SimProcess(seed=1)
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_context_intern_hit_path(benchmark):
    interner = ContextInterner()
    stack = CallStack()
    stack.push(CallSite("BENCH", "a.c", 1, "main"))
    stack.push(CallSite("BENCH", "b.c", 2, "alloc"))
    interner.intern(stack)  # prime the table

    benchmark(lambda: interner.intern(stack))


def test_store_without_watchpoint(benchmark, csod_process):
    process, _ = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_store_with_watchpoint_miss(benchmark, csod_process):
    """A store near (but not on) a watched word: the hardware-check path."""
    process, csod = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    assert csod.wmu.find_by_object_address(address) is not None
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_shadow_check_clean(benchmark):
    shadow = ShadowMemory()
    shadow.poison(0x2000, 16, TAG_REDZONE)

    benchmark(lambda: shadow.check(0x1000, 8))


def test_abstract_model_run(benchmark):
    from repro.analysis import AbstractDetector
    from repro.workloads.buggy import app_for

    spec = app_for("memcached").spec

    counter = iter(range(10**9))

    def run():
        AbstractDetector(spec, seed=next(counter)).run()

    benchmark(run)
