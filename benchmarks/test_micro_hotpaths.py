"""Microbenchmarks of the runtime's hot paths.

Classic pytest-benchmark timing (many rounds) of the operations whose
unit costs the overhead model calibrates: the interposed malloc/free
pair under CSOD, the context-intern hit path, a watched vs unwatched
store, and ASan's shadow check.  These put real Python numbers next to
the modelled nanosecond costs.
"""

import json
import pathlib
import time

import pytest

from conftest import once

from repro.asan.shadow import ShadowMemory, TAG_REDZONE
from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess

REPO_ROOT = pathlib.Path(__file__).parent.parent

# malloc/free pairs per second measured at the seed commit (efb266e) on
# the reference container, 20k-iteration best-of-five.  The recorded
# speedup in BENCH_hotpath.json is relative to this number.
SEED_BASELINE_OPS_PER_SEC = 15_543


@pytest.fixture
def csod_process():
    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    site = CallSite("BENCH", "hot.c", 1, "hot_alloc")
    process.main_thread.call_stack.push(site)
    return process, csod


def test_malloc_free_pair_under_csod(benchmark, csod_process):
    process, _csod = csod_process
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_malloc_free_pair_raw(benchmark):
    process = SimProcess(seed=1)
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_context_intern_hit_path(benchmark):
    interner = ContextInterner()
    stack = CallStack()
    stack.push(CallSite("BENCH", "a.c", 1, "main"))
    stack.push(CallSite("BENCH", "b.c", 2, "alloc"))
    interner.intern(stack)  # prime the table

    benchmark(lambda: interner.intern(stack))


def test_store_without_watchpoint(benchmark, csod_process):
    process, _ = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_store_with_watchpoint_miss(benchmark, csod_process):
    """A store near (but not on) a watched word: the hardware-check path."""
    process, csod = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    assert csod.wmu.find_by_object_address(address) is not None
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_shadow_check_clean(benchmark):
    shadow = ShadowMemory()
    shadow.poison(0x2000, 16, TAG_REDZONE)

    benchmark(lambda: shadow.check(0x1000, 8))


def _percentile(sorted_ns, fraction):
    if not sorted_ns:
        return 0
    index = min(len(sorted_ns) - 1, int(fraction * len(sorted_ns)))
    return sorted_ns[index]


def _stats(times_ns):
    ordered = sorted(times_ns)
    total = sum(ordered)
    return {
        "samples": len(ordered),
        "ops_per_sec": round(1e9 * len(ordered) / total, 1) if total else 0.0,
        "mean_ns": round(total / len(ordered), 1),
        "p50_ns": _percentile(ordered, 0.50),
        "p95_ns": _percentile(ordered, 0.95),
    }


def test_emit_hotpath_bench_json(benchmark, csod_process, artifact):
    """Machine-readable hot-path numbers, written to BENCH_hotpath.json.

    Times every interposed malloc/free pair individually so the JSON can
    report p50/p95 per-allocation cost, and records the speedup against
    the per-pair throughput recorded at the seed commit.
    """
    process, _csod = csod_process
    thread = process.main_thread
    heap = process.heap
    interner = ContextInterner()
    stack = CallStack()
    stack.push(CallSite("BENCH", "a.c", 1, "main"))
    stack.push(CallSite("BENCH", "b.c", 2, "alloc"))
    interner.intern(stack)

    def sample_pairs(count):
        times = []
        clock = time.perf_counter_ns
        for _ in range(count):
            start = clock()
            address = heap.malloc(thread, 64)
            heap.free(thread, address)
            times.append(clock() - start)
        return times

    def sample_intern_hits(count):
        times = []
        clock = time.perf_counter_ns
        for _ in range(count):
            start = clock()
            interner.intern(stack)
            times.append(clock() - start)
        return times

    sample_pairs(2_000)  # warm-up
    pair_times, hit_times = once(
        benchmark, lambda: (sample_pairs(12_000), sample_intern_hits(12_000))
    )
    pair_stats = _stats(pair_times)
    payload = {
        "benchmark": "hotpath",
        "workload": "interposed 64-byte malloc/free pair, evidence on",
        "baseline_ops_per_sec": SEED_BASELINE_OPS_PER_SEC,
        "speedup_vs_baseline": round(
            pair_stats["ops_per_sec"] / SEED_BASELINE_OPS_PER_SEC, 2
        ),
        "results": {
            "malloc_free_pair": pair_stats,
            "context_intern_hit": _stats(hit_times),
        },
    }
    text = json.dumps(payload, indent=2)
    (REPO_ROOT / "BENCH_hotpath.json").write_text(text + "\n")
    artifact("BENCH_hotpath.json", text)
    assert pair_stats["ops_per_sec"] > 0


def test_abstract_model_run(benchmark):
    from repro.analysis import AbstractDetector
    from repro.workloads.buggy import app_for

    spec = app_for("memcached").spec

    counter = iter(range(10**9))

    def run():
        AbstractDetector(spec, seed=next(counter)).run()

    benchmark(run)
