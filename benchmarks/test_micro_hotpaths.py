"""Microbenchmarks of the runtime's hot paths.

Classic pytest-benchmark timing (many rounds) of the operations whose
unit costs the overhead model calibrates: the interposed malloc/free
pair under CSOD, the context-intern hit path, a watched vs unwatched
store, and ASan's shadow check.  These put real Python numbers next to
the modelled nanosecond costs.
"""

import json
import pathlib
import time

import pytest

from conftest import once

from repro.asan.shadow import ShadowMemory, TAG_REDZONE
from repro.callstack.contexts import ContextInterner
from repro.callstack.frames import CallSite, CallStack
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess

REPO_ROOT = pathlib.Path(__file__).parent.parent

# malloc/free pairs per second measured at the seed commit (efb266e) on
# the reference container, 20k-iteration best-of-five.  The recorded
# speedup in BENCH_hotpath.json is relative to this number.
SEED_BASELINE_OPS_PER_SEC = 15_543


@pytest.fixture
def csod_process():
    process = SimProcess(seed=1)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
    site = CallSite("BENCH", "hot.c", 1, "hot_alloc")
    process.main_thread.call_stack.push(site)
    return process, csod


def test_malloc_free_pair_under_csod(benchmark, csod_process):
    process, _csod = csod_process
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_malloc_free_pair_raw(benchmark):
    process = SimProcess(seed=1)
    thread = process.main_thread
    heap = process.heap

    def pair():
        address = heap.malloc(thread, 64)
        heap.free(thread, address)

    benchmark(pair)


def test_context_intern_hit_path(benchmark):
    interner = ContextInterner()
    stack = CallStack()
    stack.push(CallSite("BENCH", "a.c", 1, "main"))
    stack.push(CallSite("BENCH", "b.c", 2, "alloc"))
    interner.intern(stack)  # prime the table

    benchmark(lambda: interner.intern(stack))


def test_store_without_watchpoint(benchmark, csod_process):
    process, _ = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_store_with_watchpoint_miss(benchmark, csod_process):
    """A store near (but not on) a watched word: the hardware-check path."""
    process, csod = csod_process
    thread = process.main_thread
    address = process.heap.malloc(thread, 64)
    assert csod.wmu.find_by_object_address(address) is not None
    data = b"x" * 8

    benchmark(lambda: process.machine.cpu.store(thread, address, data))


def test_shadow_check_clean(benchmark):
    shadow = ShadowMemory()
    shadow.poison(0x2000, 16, TAG_REDZONE)

    benchmark(lambda: shadow.check(0x1000, 8))


def _percentile(sorted_ns, fraction):
    if not sorted_ns:
        return 0
    index = min(len(sorted_ns) - 1, int(fraction * len(sorted_ns)))
    return sorted_ns[index]


def _stats(times_ns):
    ordered = sorted(times_ns)
    total = sum(ordered)
    return {
        "samples": len(ordered),
        "ops_per_sec": round(1e9 * len(ordered) / total, 1) if total else 0.0,
        "mean_ns": round(total / len(ordered), 1),
        "p50_ns": _percentile(ordered, 0.50),
        "p95_ns": _percentile(ordered, 0.95),
    }


def _bulk_pairs_per_sec(heap, thread, batch=20_000, reps=5):
    """Throughput of the interposed pair, timed as whole batches.

    One timer read per ``batch`` pairs: the headline number measures the
    hot path, not ``perf_counter_ns``.  Best-of-``reps`` discards
    scheduler noise; the per-pair timer-in-the-loop samples below still
    feed p50/p95.
    """
    clock = time.perf_counter_ns
    m, f = heap.malloc, heap.free
    best = 0.0
    for _ in range(reps):
        start = clock()
        for _ in range(batch):
            f(thread, m(thread, 64))
        elapsed = clock() - start
        if elapsed:
            best = max(best, 1e9 * batch / elapsed)
    return round(best, 1)


def _equivalence_summary():
    """Compact batched-vs-legacy equivalence check for the CI artifact.

    The full matrix (every app, error paths, fleet workers, oracle) runs
    in ``tests/integration/test_hotpath_equivalence.py``; this re-proves
    the core contract next to the perf number it licenses: identical
    ledger counts and nanos, identical virtual clock, identical reports.
    """
    from repro.core.config import HOTPATH_BATCHED, HOTPATH_LEGACY
    from repro.workloads.buggy import app_for

    def observe(hotpath):
        process = SimProcess(seed=7)
        runtime = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(hotpath=hotpath),
            seed=7,
        )
        app_for("libtiff").run(process)
        exit_reports = runtime.shutdown()
        ledger = process.machine.ledger
        counts = ledger.counts()
        return {
            "counts": counts,
            "nanos": {event: ledger.nanos(event) for event in counts},
            "clock_ns": process.machine.clock.now_ns,
            "reports": [
                (r.kind, r.source, r.fault_address, r.object_address,
                 r.object_size, r.thread_id, r.time_ns)
                for r in list(runtime.reports) + exit_reports
            ],
        }

    legacy = observe(HOTPATH_LEGACY)
    batched = observe(HOTPATH_BATCHED)
    return {
        "workload": "libtiff, seed 7, legacy vs batched hot path",
        "ledger_counts_identical": batched["counts"] == legacy["counts"],
        "ledger_nanos_identical": batched["nanos"] == legacy["nanos"],
        "virtual_clock_identical": batched["clock_ns"] == legacy["clock_ns"],
        "reports_identical": batched["reports"] == legacy["reports"],
        "events_compared": len(legacy["counts"]),
        "reports_compared": len(legacy["reports"]),
    }


def test_emit_hotpath_bench_json(benchmark, csod_process, artifact):
    """Machine-readable hot-path numbers, written to BENCH_hotpath.json.

    The headline ``pairs_per_sec`` comes from bulk-timed batches (one
    timer read per 20k pairs); individually-timed samples still provide
    p50/p95 per-pair latency.  The number ratchets: a run below the
    floor recorded in the committed BENCH_hotpath.json fails, so hot
    path regressions cannot land silently.  The batched-vs-legacy
    equivalence summary rides along as a CI artifact — the perf number
    only counts because the cost model is provably unchanged.
    """
    import gc

    process, _csod = csod_process
    thread = process.main_thread
    heap = process.heap
    interner = ContextInterner()
    stack = CallStack()
    stack.push(CallSite("BENCH", "a.c", 1, "main"))
    stack.push(CallSite("BENCH", "b.c", 2, "alloc"))
    interner.intern(stack)

    bench_path = REPO_ROOT / "BENCH_hotpath.json"
    recorded_floor = 0
    if bench_path.exists():
        try:
            recorded_floor = json.loads(bench_path.read_text()).get(
                "pairs_per_sec_floor", 0
            )
        except (ValueError, OSError):
            recorded_floor = 0

    def sample_pairs(count):
        times = []
        clock = time.perf_counter_ns
        for _ in range(count):
            start = clock()
            address = heap.malloc(thread, 64)
            heap.free(thread, address)
            times.append(clock() - start)
        return times

    def sample_intern_hits(count):
        times = []
        clock = time.perf_counter_ns
        for _ in range(count):
            start = clock()
            interner.intern(stack)
            times.append(clock() - start)
        return times

    def measure():
        sample_pairs(3_000)  # warm-up
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            pairs_per_sec = _bulk_pairs_per_sec(heap, thread)
            pair_times = sample_pairs(12_000)
            hit_times = sample_intern_hits(12_000)
        finally:
            if gc_was_enabled:
                gc.enable()
        return pairs_per_sec, pair_times, hit_times

    pairs_per_sec, pair_times, hit_times = once(benchmark, measure)
    equivalence = _equivalence_summary()
    payload = {
        "benchmark": "hotpath",
        "workload": "interposed 64-byte malloc/free pair, evidence on",
        "baseline_ops_per_sec": SEED_BASELINE_OPS_PER_SEC,
        "pairs_per_sec": pairs_per_sec,
        # Ratchet floor: 70% of the best observed throughput (headroom
        # for machine noise), never lowered by a slow run.
        "pairs_per_sec_floor": max(recorded_floor, int(pairs_per_sec * 0.7)),
        "speedup_vs_baseline": round(
            pairs_per_sec / SEED_BASELINE_OPS_PER_SEC, 2
        ),
        "equivalence": equivalence,
        "results": {
            "malloc_free_pair": _stats(pair_times),
            "context_intern_hit": _stats(hit_times),
        },
    }
    text = json.dumps(payload, indent=2)
    bench_path.write_text(text + "\n")
    artifact("BENCH_hotpath.json", text)
    artifact(
        "hotpath_equivalence.json", json.dumps(equivalence, indent=2)
    )
    assert all(
        equivalence[key]
        for key in equivalence
        if key.endswith("_identical")
    ), equivalence
    assert pairs_per_sec >= recorded_floor, (
        f"hot-path throughput regressed: {pairs_per_sec:.0f} pairs/s is "
        f"below the recorded floor of {recorded_floor} (BENCH_hotpath.json)"
    )


def test_abstract_model_run(benchmark):
    from repro.analysis import AbstractDetector
    from repro.workloads.buggy import app_for

    spec = app_for("memcached").spec

    counter = iter(range(10**9))

    def run():
        AbstractDetector(spec, seed=next(counter)).run()

    benchmark(run)
