"""§V-A2 — evidence-based detection across executions.

"CSOD can always detect these over-write problems during their second
execution, if missed in the first execution."
"""

from conftest import once

from repro.experiments.evidence import render_evidence, run_evidence_experiment


def test_evidence_second_run(benchmark, artifact):
    results = once(benchmark, lambda: run_evidence_experiment(attempts=20))
    artifact("evidence_second_run.txt", render_evidence(results))
    assert len(results) == 6  # the six over-write applications
    for result in results:
        assert result.guarantee_holds, result.app
    # The late-victim apps must actually exercise the missed-first-run path.
    by_app = {r.app: r for r in results}
    assert by_app["memcached"].first_run_missed > 0
    assert by_app["mysql"].first_run_missed > 0
