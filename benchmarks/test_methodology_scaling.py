"""Methodology validation — the effectiveness-scale shrink is sound.

The 1,000-execution protocol replays heartbleed at 1/4 scale and MySQL
at 1/20 scale (pure-Python full-scale repetition is intractable).  The
shrink preserves the victim's relative position, the
allocations-per-context shape, and the virtual runtime.  This bench
validates the methodology: the detection rate at the experiment scale
must agree with a 2x larger replica of the same structure.
"""

from conftest import once

from repro.analysis import estimate_detection_rate
from repro.core import CSODConfig
from repro.experiments.tables import render_table
from repro.workloads.buggy import spec_for

RUNS = 300


def rates_at_scales(name, scales):
    config = CSODConfig(replacement_policy="random")
    return {
        scale: estimate_detection_rate(
            spec_for(name).scaled(scale), config, runs=RUNS
        )
        for scale in scales
    }


def test_methodology_scaling(benchmark, artifact):
    def run():
        return {
            "heartbleed": rates_at_scales("heartbleed", (0.25, 0.5)),
            "mysql": rates_at_scales("mysql", (0.05, 0.1)),
        }

    results = once(benchmark, run)
    body = []
    for name, by_scale in results.items():
        for scale, rate in sorted(by_scale.items()):
            body.append([name, f"{scale:.2f}", f"{rate:.1%}"])
    artifact(
        "methodology_scaling.txt",
        render_table(
            ["Application", "scale", "detection rate"],
            body,
            title=f"Scaling-methodology check ({RUNS} abstract runs per cell)",
        ),
    )
    # Doubling the replayed scale must not move the rate materially.
    hb = results["heartbleed"]
    assert abs(hb[0.25] - hb[0.5]) < 0.12
    my = results["mysql"]
    assert abs(my[0.05] - my[0.1]) < 0.12
