"""Ablation 2 — the sampling knobs (§III-B2's "pre-defined macros").

Sweeps the initial probability and the watch-degradation factor on
memcached (a late-victim application where the knobs actually matter)
and shows why the paper's defaults are a reasonable middle ground.
"""

from conftest import once

from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

RUNS = 60


def detection_rate(config, runs=RUNS):
    app = app_for("memcached")
    hits = 0
    for seed in range(runs):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, config, seed=seed)
        app.run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    return hits / runs


def sweep():
    rows = []
    for initial in (0.1, 0.5, 0.9):
        config = CSODConfig(
            replacement_policy="random", initial_probability=initial
        )
        rows.append(("initial_probability", initial, detection_rate(config)))
    for factor in (0.25, 0.5, 0.9):
        config = CSODConfig(
            replacement_policy="random", watch_degradation_factor=factor
        )
        rows.append(("watch_degradation_factor", factor, detection_rate(config)))
    return rows


def test_ablation_sampling_knobs(benchmark, artifact):
    rows = once(benchmark, sweep)
    artifact(
        "ablation_sampling_knobs.txt",
        render_table(
            ["Knob", "Value", "memcached detection rate"],
            [[k, v, f"{r:.1%}"] for k, v, r in rows],
            title="Ablation — sampling knobs (random policy, 60 runs)",
        ),
    )
    by_knob = {(k, v): r for k, v, r in rows}
    # The paper's 50% default is a genuine middle ground: a low initial
    # probability starves the victim's draw, while a high one inflates
    # every *competing* context too, so the victim can no longer win
    # replacement — both extremes lose to the default.
    assert by_knob[("initial_probability", 0.5)] >= by_knob[
        ("initial_probability", 0.1)
    ]
    assert by_knob[("initial_probability", 0.5)] >= by_knob[
        ("initial_probability", 0.9)
    ]
    # A gentler watch-degradation factor keeps prior-watched contexts
    # (including the victim's) alive: monotone in the victim's favour.
    assert (
        by_knob[("watch_degradation_factor", 0.25)]
        <= by_knob[("watch_degradation_factor", 0.5)]
        <= by_knob[("watch_degradation_factor", 0.9)]
    )
