"""Table IV — characteristics of the performance applications."""

from conftest import PERF_CAP, once

from repro.experiments.characteristics import render_table4, run_table4


def test_table4_perf_characteristics(benchmark, artifact):
    rows = once(benchmark, lambda: run_table4(sim_alloc_cap=PERF_CAP))
    artifact("table4.txt", render_table4(rows))

    by_app = {row.app: row for row in rows}
    # Watched-times ordering shape: tiny-allocation apps watch a handful
    # of times, MySQL watches the most (as in the paper's WT column).
    assert by_app["blackscholes"].watched_times <= 6
    assert by_app["pfscan"].watched_times <= 6
    assert by_app["mysql"].watched_times == max(r.watched_times for r in rows)
    # Every app watches at least its first four objects.
    assert all(row.watched_times >= 4 for row in rows)
