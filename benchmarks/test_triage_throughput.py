"""Triage throughput — clustering rate over a 1,000-report corpus.

Similarity clustering is the only triage stage that scales with the
*report* count rather than the execution count (ranking is linear and
bisection is per-cluster), so it is the stage worth watching: the
greedy assignment is O(reports x clusters-per-bucket) with a frame-level
edit distance inside.  This bench synthesizes a fleet-shaped corpus —
many bugs, several jittered signatures each, canary/watchpoint
variants — clusters it, and records reports/sec and clusters/sec into
``BENCH_triage.json``.
"""

import json
import pathlib
import time

from conftest import once

from repro.fleet.aggregate import AggregatedReport
from repro.triage.clustering import cluster_reports
from repro.triage.ranking import rank_clusters

REPO_ROOT = pathlib.Path(__file__).parent.parent

REPORTS = 1000
BUGS = 100  # distinct allocation sites
VARIANTS_PER_BUG = REPORTS // BUGS  # jittered signatures per bug


def synthetic_corpus():
    """1,000 reports: 100 bugs x 10 signature variants each.

    Variants model the real jitter sources: canary reports without an
    access stack, watchpoint reports with tail-frame jitter in both
    stacks — everything the clustering rule must collapse.
    """
    reports = []
    for bug in range(BUGS):
        kind = "over-write" if bug % 2 == 0 else "over-read"
        alloc_prefix = (
            f"APP{bug:03d}.SO/alloc.c:{100 + bug}",
            f"APP{bug:03d}.SO/wrap.c:{200 + bug}",
            f"APP{bug:03d}.SO/main.c:{300 + bug}",
        )
        for variant in range(VARIANTS_PER_BUG):
            alloc = alloc_prefix + (
                f"APP{bug:03d}.SO/caller.c:{variant}",
            )
            access = (
                ()
                if variant == 0  # the canary-evidence variant
                else (
                    f"APP{bug:03d}.SO/copy.c:{400 + bug}",
                    f"APP{bug:03d}.SO/deep.c:{variant % 2}",
                )
            )
            reports.append(
                AggregatedReport(
                    signature=f"{kind}|bug{bug}|v{variant}",
                    kind=kind,
                    count=1 + variant,
                    executions=1,
                    first_seen=variant,
                    first_seen_app=f"app{bug}",
                    first_seen_seed=variant,
                    sources={
                        "free-canary" if variant == 0 else "watchpoint": 1
                    },
                    allocation_context=alloc,
                    access_context=access,
                )
            )
    return reports


def test_triage_throughput(benchmark, artifact):
    corpus = synthetic_corpus()
    assert len(corpus) == REPORTS

    def run():
        start = time.perf_counter()
        clusters = cluster_reports(corpus)
        cluster_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ranked = rank_clusters(clusters, total_executions=REPORTS)
        rank_seconds = time.perf_counter() - start
        return clusters, ranked, cluster_seconds, rank_seconds

    clusters, ranked, cluster_seconds, rank_seconds = once(benchmark, run)

    # Correctness gates: every bug found, none merged across bugs.
    assert len(clusters) == BUGS
    for cluster in clusters:
        apps = {m.first_seen_app for m in cluster.members}
        assert len(apps) == 1, f"cross-bug merge: {apps}"
        assert len(cluster.members) == VARIANTS_PER_BUG
    assert len(ranked) == BUGS

    reports_per_sec = REPORTS / cluster_seconds
    clusters_per_sec = BUGS / cluster_seconds
    lines = [
        f"triage throughput: {REPORTS} reports -> {BUGS} clusters",
        f"  clustering: {cluster_seconds:8.3f} s "
        f"({reports_per_sec:8.1f} reports/s, "
        f"{clusters_per_sec:6.1f} clusters/s)",
        f"  ranking:    {rank_seconds:8.3f} s",
        f"  dedup: {REPORTS / BUGS:.1f} signatures per bug collapsed",
    ]
    artifact("triage_throughput.txt", "\n".join(lines))

    payload = {
        "benchmark": "triage",
        "reports": REPORTS,
        "bugs": BUGS,
        "variants_per_bug": VARIANTS_PER_BUG,
        "cluster_seconds": round(cluster_seconds, 4),
        "rank_seconds": round(rank_seconds, 4),
        "reports_per_sec": round(reports_per_sec, 1),
        "clusters_per_sec": round(clusters_per_sec, 1),
        "cross_bug_merges": 0,
    }
    (REPO_ROOT / "BENCH_triage.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The corpus must cluster at interactive speed; the greedy pass is
    # bucketed by coarse key, so this bounds the per-bucket scan too.
    assert cluster_seconds < 30.0
