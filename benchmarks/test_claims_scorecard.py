"""The full claims scorecard at benchmark scale.

One run, every qualitative claim of EXPERIMENTS.md re-checked — the
artifact-evaluation entry point (`python -m repro validate` is the CLI
equivalent).
"""

from conftest import once

from repro.experiments.validation import render_validation, validate


def test_claims_scorecard(benchmark, artifact):
    results = once(benchmark, lambda: validate(runs=60, cap=6000))
    artifact("claims_scorecard.txt", render_validation(results))
    failing = [r.claim for r in results if not r.passed]
    assert not failing, failing
