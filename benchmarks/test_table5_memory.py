"""Table V — memory usage: original vs CSOD vs ASan."""

from conftest import once

from repro.experiments.memory_usage import render_table5, run_table5, totals


def test_table5_memory(benchmark, artifact):
    rows = once(benchmark, run_table5)
    artifact("table5.txt", render_table5(rows))

    t = totals(rows)
    # Paper: CSOD ~105% of original in total, ASan ~143%.
    assert 103 <= t["csod_pct"] <= 115
    assert 130 <= t["asan_pct"] <= 160

    by_app = {row.app: row for row in rows}
    # Tiny-footprint apps: CSOD's fixed table dominates (Aget 359%-ish);
    # ASan explodes on allocation-hot Swaptions (paper: 4178%).
    assert by_app["aget"].footprint.csod_percent > 250
    assert by_app["swaptions"].footprint.asan_percent > 1000
    # Large-footprint apps see single-digit CSOD overhead.
    assert by_app["pfscan"].footprint.csod_percent < 105
    assert by_app["facesim"].footprint.csod_percent < 125
