"""Adversarial solver throughput — corners solved and lowered per second.

The constraint-guided generator is only worth running in CI if solving
for a sampler corner is cheap next to executing the resulting program.
This bench times the two stages separately: bounded-model-check solving
(BFS over the pure ``SamplerState`` transitions) and lowering (witness →
oracle-grammar program, including the throttle-edge clock calibration
run), across several solver seeds, into ``BENCH_adversarial.json``.
"""

import json
import pathlib
import time

from conftest import once

from repro.oracle.adversarial import ALL_TARGETS, lower, solve_target

REPO_ROOT = pathlib.Path(__file__).parent.parent

SEEDS = (0, 1, 2, 3)  # distinct seeds defeat the solution cache


def test_adversarial_throughput(benchmark, artifact):
    def run():
        start = time.perf_counter()
        solutions = [
            solve_target(seed, target)
            for seed in SEEDS
            for target in ALL_TARGETS
        ]
        solve_seconds = time.perf_counter() - start

        solved = [s for s in solutions if s.solved]
        start = time.perf_counter()
        programs = [lower(solution) for solution in solved]
        lower_seconds = time.perf_counter() - start
        return solutions, solved, programs, solve_seconds, lower_seconds

    solutions, solved, programs, solve_seconds, lower_seconds = once(
        benchmark, run
    )

    attempts = len(SEEDS) * len(ALL_TARGETS)
    timeout_rate = (attempts - len(solved)) / attempts
    solved_per_sec = attempts / solve_seconds
    lowered_per_sec = len(programs) / lower_seconds
    nodes = sum(s.nodes_explored for s in solutions)

    lines = [
        f"adversarial solver: {attempts} (seed, target) attempts over "
        f"{len(ALL_TARGETS)} corner predicates",
        f"  solving:  {solve_seconds:8.3f} s "
        f"({solved_per_sec:8.1f} targets/s, {nodes} nodes explored)",
        f"  lowering: {lower_seconds:8.3f} s "
        f"({lowered_per_sec:8.1f} programs/s)",
        f"  timeout rate: {timeout_rate:.3f}",
    ]
    artifact("adversarial_throughput.txt", "\n".join(lines))

    payload = {
        "benchmark": "adversarial",
        "seeds": len(SEEDS),
        "targets": len(ALL_TARGETS),
        "attempts": attempts,
        "solved": len(solved),
        "nodes_explored": nodes,
        "solve_seconds": round(solve_seconds, 4),
        "targets_solved_per_sec": round(solved_per_sec, 1),
        "lower_seconds": round(lower_seconds, 4),
        "programs_lowered_per_sec": round(lowered_per_sec, 1),
        "solver_timeout_rate": round(timeout_rate, 4),
    }
    (REPO_ROOT / "BENCH_adversarial.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The solved-targets floor: every corner predicate at every seed.
    assert len(solved) == attempts
    assert timeout_rate == 0.0
    # Every solved witness must lower (the calibration must converge).
    assert len(programs) == len(solved)
