"""Shared benchmark plumbing.

Every benchmark prints the regenerated table/figure rows (paper values
side by side) and also writes them under ``benchmarks/out/`` so the
artifacts survive the run.  Heavy experiment benchmarks run one round —
they are experiments with a timing attached, not microbenchmarks.

Environment knobs:

* ``CSOD_BENCH_RUNS``  — executions per app/policy for Table II
  (default 100; the paper used 1000).
* ``CSOD_BENCH_CAP``   — replayed allocations per perf app (default 8000).
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

TABLE2_RUNS = int(os.environ.get("CSOD_BENCH_RUNS", "100"))
PERF_CAP = int(os.environ.get("CSOD_BENCH_CAP", "8000"))


@pytest.fixture
def artifact():
    """Write (and echo) one benchmark's output rows."""

    def write(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / name).write_text(text + "\n")
        print()
        print(text)

    return write


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
