"""Ablation 5 — the §V-B custom syscall.

The paper: eight syscalls install+remove one watchpoint per thread; "we
could further reduce the performance overhead by combining these system
calls into one custom system call, but this requires modification of the
underlying OS."  The simulated kernel *is* modifiable, so this ablation
quantifies what the paper left as future work, on the two most
watch-active applications (MySQL: WT=1362; Ferret: WT=346, 16 threads).
"""

from conftest import once

from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.machine.syscall_cost import EVENT_SYSCALL
from repro.workloads.base import SimProcess
from repro.workloads.perf import perf_app_for

APPS = ("mysql", "ferret")


def measure(name, batched, cap=6000):
    process = SimProcess(seed=7)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(batched_syscalls=batched),
        seed=7,
    )
    measurement = perf_app_for(name, cap).run(process, csod)
    csod.shutdown()
    syscalls = process.machine.ledger.count(EVENT_SYSCALL)
    syscall_ns = sum(
        measurement.nanos(e)
        for e in (
            "syscall.perf_event_open",
            "syscall.fcntl",
            "syscall.ioctl",
            "syscall.close",
            "syscall.watchpoint_batch",
        )
    )
    return measurement.watched_times, syscalls, syscall_ns


def test_ablation_batched_syscalls(benchmark, artifact):
    def run():
        return {
            name: (measure(name, False), measure(name, True)) for name in APPS
        }

    results = once(benchmark, run)
    body = []
    for name, (plain, batched) in results.items():
        body.append(
            [
                name,
                plain[0],
                f"{plain[1]:,}",
                f"{batched[1]:,}",
                f"{plain[2] / 1e6:.2f}ms",
                f"{batched[2] / 1e6:.2f}ms",
                f"{plain[2] / max(1, batched[2]):.0f}x",
            ]
        )
    artifact(
        "ablation_batched_syscalls.txt",
        render_table(
            ["App", "WT", "syscalls", "syscalls (batched)",
             "wp time", "wp time (batched)", "saving"],
            body,
            title="Ablation — one custom syscall vs eight per thread (16 threads)",
        ),
    )
    for name, (plain, batched) in results.items():
        assert batched[0] == plain[0]  # identical watch behaviour
        assert batched[1] < plain[1] / 5  # far fewer syscalls
        assert batched[2] < plain[2] / 5  # far less watchpoint time
