"""Per-arm campaign cost — every registered detector, one at a time.

Each arm runs the same generated-app campaign solo, so the measured
apps/sec isolates what that detector's instrumentation costs on top of
bare execution.  The modeled overhead percentages from the registry
ride along in the emitted JSON so the measured ranking can be eyeballed
against the modeled one.  The csod row carries a committed-floor
ratchet: the flagship arm regressing below the floor fails the build.
"""

import json
import pathlib
import time

from conftest import once

from repro.detectors import get, known_arms
from repro.oracle.runner import OracleSettings, run_oracle

REPO_ROOT = pathlib.Path(__file__).parent.parent

BUDGET = 12  # generated apps per solo campaign
SEED = 5

# Ratchet, not a measurement: set well below the observed csod rate so
# runner jitter never blocks a PR, raised as the hot path improves.
CSOD_FLOOR_APPS_PER_SEC = 3.0


def test_detector_overhead(benchmark, artifact):
    def run():
        timings = {}
        for arm in known_arms():
            settings = OracleSettings(
                budget=BUDGET,
                seed=SEED,
                workers=1,
                executions_per_app=1,
                arms=(arm,),
            )
            start = time.perf_counter()
            result = run_oracle(settings)
            elapsed = time.perf_counter() - start
            card = result.scorecard["arms"][arm]
            timings[arm] = (elapsed, card["fp_reports"])
        return timings

    timings = once(benchmark, run)

    rows = []
    for arm in known_arms():
        elapsed, fp_reports = timings[arm]
        detector = get(arm)
        rows.append(
            {
                "arm": arm,
                "apps_per_sec": round(BUDGET / elapsed, 2),
                "seconds": round(elapsed, 4),
                "fp_reports": fp_reports,
                "modeled_overhead_pct": detector.modeled_overhead_pct,
                "production_viable": detector.production_viable,
            }
        )

    lines = [f"detector overhead: {BUDGET} generated apps per solo arm"]
    for row in rows:
        lines.append(
            f"  {row['arm']:<16} {row['seconds']:8.3f} s "
            f"({row['apps_per_sec']:6.2f} apps/s, "
            f"modeled {row['modeled_overhead_pct']:5.1f}%)"
        )
    artifact("detector_overhead.txt", "\n".join(lines))

    payload = {
        "benchmark": "detectors",
        "budget": BUDGET,
        "seed": SEED,
        "csod_floor_apps_per_sec": CSOD_FLOOR_APPS_PER_SEC,
        "rows": rows,
    }
    (REPO_ROOT / "BENCH_detectors.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Sampling-era arms must never report a false positive, solo or not.
    for row in rows:
        assert row["fp_reports"] == 0, row["arm"]

    csod = next(row for row in rows if row["arm"] == "csod")
    assert csod["apps_per_sec"] >= CSOD_FLOOR_APPS_PER_SEC, (
        f"csod campaign rate {csod['apps_per_sec']} apps/s fell below "
        f"the committed {CSOD_FLOOR_APPS_PER_SEC} apps/s floor"
    )
