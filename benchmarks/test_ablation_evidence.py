"""Ablation 4 — evidence canaries on/off (§IV-B).

What the canary machinery buys (guaranteed second-run detection of
over-writes) and what it costs (the gap between the two CSOD series in
Fig. 7).
"""

from conftest import PERF_CAP, once

from repro.core import CSODConfig, CSODRuntime
from repro.experiments.performance import measure_app
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

APPS = ("canneal", "swaptions", "mysql")


def overhead_gap():
    rows = []
    for name in APPS:
        row = measure_app(name, sim_alloc_cap=PERF_CAP)
        rows.append((name, row.csod_no_evidence, row.csod))
    return rows


def detection_value(runs=40):
    """Evidence converts missed over-writes into recorded ones."""
    app = app_for("memcached")
    missed_with_evidence_recorded = 0
    missed_total = 0
    for seed in range(runs):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=seed)
        app.run(process)
        csod.shutdown()
        if not csod.detected_by_watchpoint:
            missed_total += 1
            missed_with_evidence_recorded += csod.detected
    return missed_total, missed_with_evidence_recorded


def test_ablation_evidence(benchmark, artifact):
    def run():
        return overhead_gap(), detection_value()

    rows, (missed, recorded) = once(benchmark, run)
    table = render_table(
        ["Application", "CSOD w/o evidence", "CSOD"],
        [[n, f"{a:.3f}", f"{b:.3f}"] for n, a, b in rows],
        title="Ablation — evidence canaries: normalized runtime cost",
    )
    table += (
        f"\n\nvalue: of {missed} memcached runs the watchpoints missed, "
        f"{recorded} recorded canary evidence ({recorded}/{missed})"
    )
    artifact("ablation_evidence.txt", table)
    for _name, without, with_ev in rows:
        assert with_ev >= without
    assert missed > 0 and recorded == missed  # over-writes always leave evidence
