"""§VI — detection vs overflow stride, CSOD and ASan side by side.

"CSOD may not be able to detect non-continuous overflows that skip the
addresses of installed watchpoints... ASan can detect overflows within
redzones, regardless of stride or continuity... ASan cannot detect
non-continuous overflows beyond the redzones."

The bench sweeps how far past the object the overflow starts and shows
both cliffs: CSOD's at the 8-byte boundary word, ASan's at the end of
the poisoned zone.
"""

from dataclasses import replace

from conftest import once

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.workloads.base import BuggyAppSpec, SimProcess, SyntheticBuggyApp

BASE_SPEC = BuggyAppSpec(
    name="stride",
    bug_kind="over-write",
    vuln_module="STRIDE",
    reference="§VI",
    total_contexts=2,
    total_allocations=2,
    before_contexts=2,
    before_allocations=2,
    victim_alloc_index=1,
    structural_seed=1,
)

SKIPS = (0, 4, 8, 16, 32, 64, 96)


def detects(skip, runtime_kind):
    spec = replace(BASE_SPEC, overflow_skip=skip)
    app = SyntheticBuggyApp(spec)
    process = SimProcess(seed=1)
    if runtime_kind == "csod":
        runtime = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)
        app.run(process)
        runtime.shutdown()
        return runtime.detected_by_watchpoint
    runtime = ASanRuntime(process.machine, process.heap)
    app.run(process)
    runtime.shutdown()
    return runtime.detected


def test_limitation_stride(benchmark, artifact):
    def run():
        return {
            skip: (detects(skip, "csod"), detects(skip, "asan"))
            for skip in SKIPS
        }

    results = once(benchmark, run)
    artifact(
        "limitation_stride.txt",
        render_table(
            ["overflow starts at object end +", "CSOD", "ASan (min redzones)"],
            [
                [f"{skip} B", "yes" if c else "no", "yes" if a else "no"]
                for skip, (c, a) in sorted(results.items())
            ],
            title="§VI — detection vs overflow stride",
        ),
    )
    csod = {skip: c for skip, (c, a) in results.items()}
    asan = {skip: a for skip, (c, a) in results.items()}
    # CSOD: only the boundary word (the 8-byte write at +0 and the +4
    # write overlapping it) fires the watchpoint.
    assert csod[0] and csod[4]
    assert not any(csod[s] for s in (16, 32, 64, 96))
    # ASan: covered while the landing zone is poisoned, blind beyond.
    assert asan[0] and asan[4] and asan[8]
    assert not asan[96]
