"""Beyond the paper — CSOD vs a GWP-ASan-style guard-page sampler.

The paper compares against ASan (always-on checking) and
evidence/replay tools.  A third point in the design space appeared at
the same time: sample a handful of allocations onto guard pages.  This
bench quantifies why context-sensitive watchpoints dominate it for
*finding a specific latent bug*: uniform allocation sampling must get
lucky with the one overflowing object, while CSOD concentrates its four
watchpoints by calling context.
"""

from conftest import once

from repro.core import CSODConfig, CSODRuntime
from repro.errors import SegmentationFault
from repro.experiments.tables import render_table
from repro.guardpage import GuardPageConfig, GuardPageRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

RUNS = 80
APPS = ("memcached", "zziplib")


def csod_rate(name):
    app = app_for(name)
    hits = 0
    for seed in range(RUNS):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(replacement_policy="random"),
            seed=seed,
        )
        app.run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    return hits / RUNS


def guardpage_rate(name, sample_every):
    app = app_for(name)
    hits = 0
    for seed in range(RUNS):
        process = SimProcess(seed=seed)
        runtime = GuardPageRuntime(
            process.machine,
            process.heap,
            GuardPageConfig(sample_every=sample_every),
            seed=seed,
        )
        try:
            app.run(process)
        except SegmentationFault:
            pass  # the guard fault kills the process; that IS detection
        runtime.shutdown()
        hits += runtime.detected
    return hits / RUNS


def test_beyond_guardpage(benchmark, artifact):
    def run():
        rows = []
        for name in APPS:
            rows.append(
                (
                    name,
                    csod_rate(name),
                    guardpage_rate(name, 50),
                    guardpage_rate(name, 1000),
                )
            )
        return rows

    rows = once(benchmark, run)
    artifact(
        "beyond_guardpage.txt",
        render_table(
            ["Application", "CSOD (random)", "guard pages 1/50", "guard pages 1/1000"],
            [[n, f"{a:.1%}", f"{b:.1%}", f"{c:.1%}"] for n, a, b, c in rows],
            title="Beyond the paper — per-execution detection probability",
        ),
    )
    for name, csod, gp50, gp1000 in rows:
        # CSOD beats even an aggressive 1/50 sampler on these apps, and
        # production-grade 1/1000 sampling is essentially blind.
        assert csod > gp50, name
        assert gp1000 <= gp50
        assert gp1000 < 0.05
