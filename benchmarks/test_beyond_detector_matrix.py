"""Beyond the paper — the full detector design-space matrix.

One table across every detector this repository implements, over one
over-read (heartbleed) and one over-write (memcached) at the same
per-execution protocol: CSOD, CSOD evidence-only (HeapTherapy-style),
ASan, the guard-page sampler, and the PMU access sampler.  This is the
design-space picture the paper's §VII narrates, measured.
"""

from conftest import once

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.errors import SegmentationFault
from repro.experiments.tables import render_table
from repro.guardpage import GuardPageConfig, GuardPageRuntime
from repro.sampler import SamplerConfig, SamplerRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

RUNS = 50
APPS = ("heartbleed", "memcached")


def rate(app_name, make_runtime, detected_of):
    app = app_for(app_name)
    hits = 0
    for seed in range(RUNS):
        process = SimProcess(seed=seed)
        runtime = make_runtime(process, seed)
        try:
            app.run(process)
        except SegmentationFault:
            pass
        shutdown = getattr(runtime, "shutdown", None)
        if shutdown:
            shutdown()
        hits += bool(detected_of(runtime))
    return hits / RUNS


DETECTORS = (
    (
        "CSOD (random)",
        lambda p, s: CSODRuntime(
            p.machine, p.heap, CSODConfig(replacement_policy="random"), seed=s
        ),
        lambda r: r.detected_by_watchpoint,
    ),
    (
        "CSOD evidence-only",
        lambda p, s: CSODRuntime(
            p.machine, p.heap, CSODConfig(watchpoints_enabled=False), seed=s
        ),
        lambda r: r.detected,
    ),
    (
        "ASan (uninstrumented libs)",
        lambda p, s: ASanRuntime(p.machine, p.heap),
        lambda r: r.detected,
    ),
    (
        "guard pages 1/50",
        lambda p, s: GuardPageRuntime(
            p.machine, p.heap, GuardPageConfig(sample_every=50), seed=s
        ),
        lambda r: r.detected,
    ),
    (
        "PMU sampler 1/100",
        lambda p, s: SamplerRuntime(
            p.machine, p.heap, SamplerConfig(sample_period=100), seed=s
        ),
        lambda r: r.detected,
    ),
)


def test_beyond_detector_matrix(benchmark, artifact):
    def run():
        rows = []
        for label, make_runtime, detected_of in DETECTORS:
            rows.append(
                [label]
                + [
                    rate(app_name, make_runtime, detected_of)
                    for app_name in APPS
                ]
            )
        return rows

    rows = once(benchmark, run)
    artifact(
        "beyond_detector_matrix.txt",
        render_table(
            ["Detector"] + [f"{a} ({'read' if a=='heartbleed' else 'write'})" for a in APPS],
            [[label, f"{r1:.0%}", f"{r2:.0%}"] for label, r1, r2 in rows],
            title=f"Detector design space — per-execution detection ({RUNS} runs)",
        ),
    )
    by_label = {row[0]: row[1:] for row in rows}
    # The §VII narrative, measured:
    heartbleed = 0
    memcached = 1
    assert by_label["CSOD evidence-only"][heartbleed] == 0.0  # no over-reads
    assert by_label["CSOD evidence-only"][memcached] == 1.0  # every over-write
    assert by_label["ASan (uninstrumented libs)"][heartbleed] == 1.0
    assert by_label["CSOD (random)"][heartbleed] > 0.1
    assert by_label["guard pages 1/50"][memcached] < by_label["CSOD (random)"][memcached]
    assert by_label["PMU sampler 1/100"][heartbleed] <= 0.2
