"""Fig. 7 — normalized performance overhead, four configurations.

Expected shape: only Canneal/Ferret/Raytrace exceed 10% under CSOD w/o
evidence; CSOD averages single digits; ASan averages ~35-45% with x264
the clipped outlier and the IO-bound apps near the baseline; Freqmine
has no ASan bars (crash).
"""

import math

from conftest import PERF_CAP, once

from repro.experiments.performance import (
    averages,
    render_figure7,
    render_figure7_chart,
    run_figure7,
)


def test_figure7_overhead(benchmark, artifact):
    rows = once(benchmark, lambda: run_figure7(sim_alloc_cap=PERF_CAP))
    artifact(
        "figure7.txt", render_figure7(rows) + "\n\n" + render_figure7_chart(rows)
    )

    by_app = {row.app: row for row in rows}
    over_10 = {
        row.app for row in rows if row.csod_no_evidence > 1.10
    }
    assert over_10 == {"canneal", "ferret", "raytrace"}

    avg = averages(rows)
    assert 1.02 <= avg["csod_no_evidence"] <= 1.07  # paper: 1.043
    assert avg["csod_no_evidence"] <= avg["csod"] <= 1.09  # paper: 1.067
    assert 1.25 <= avg["asan_minimal"] <= 1.50  # paper: ~1.39
    assert avg["asan_minimal"] <= avg["asan"]

    # x264 carries the clipped ASan bars; IO apps sit at the baseline.
    assert by_app["x264"].asan == max(
        row.asan for row in rows if not math.isnan(row.asan)
    )
    assert by_app["x264"].asan > 2.0
    assert by_app["aget"].csod < 1.03
    assert by_app["pfscan"].asan < 1.08
    assert math.isnan(by_app["freqmine"].asan)
