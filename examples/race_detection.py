#!/usr/bin/env python
"""Catching an interleaving-dependent overflow in "production".

Some overflows only happen under one particular thread interleaving
(§I) — no test suite reliably triggers them, which is exactly why the
paper argues for an always-on production detector.  This demo runs a
producer/consumer TOCTOU workload under many scheduler seeds: most
interleavings are harmless, a few smash a 64-byte buffer with a 128-byte
copy, and CSOD reports the smash the moment it happens.

Run:  python examples/race_detection.py
"""

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.race import RaceOverflowApp


def main() -> None:
    interleavings = 60
    triggered = 0
    detected = 0
    first_report = None
    first_symbols = None
    for seed in range(interleavings):
        process = SimProcess(seed=7)
        csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=7)
        result = RaceOverflowApp().run(process, scheduler_seed=seed)
        csod.shutdown()
        if result.triggered:
            triggered += 1
            if csod.detected_by_watchpoint:
                detected += 1
                if first_report is None:
                    first_report = next(
                        r for r in csod.reports if r.source == "watchpoint"
                    )
                    first_symbols = process.symbols
        else:
            assert not csod.detected_by_watchpoint  # never a false alarm

    print(f"{interleavings} interleavings of the same program:")
    print(f"  harmless: {interleavings - triggered}")
    print(f"  buffer smashed by the race: {triggered}")
    print(f"  caught by CSOD when it happened: {detected}/{triggered}")
    print()
    print("=== report from one racy interleaving ===")
    print(first_report.render(first_symbols))
    print()
    print("Note the dual context: the copy in the CONSUMER smashed a")
    print("buffer allocated by the PRODUCER — the cross-thread case the")
    print("per-thread watchpoint installation of Fig. 3 exists for.")


if __name__ == "__main__":
    main()
