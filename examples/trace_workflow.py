#!/usr/bin/env python
"""Record a workload's heap trace, then replay it under every detector.

The on-ramp for using this reproduction on *your* workload: capture the
allocation/access behaviour once with :class:`TraceRecorder`, save it as
JSON, and replay the identical trace under CSOD, ASan, or nothing —
the same bug, three verdicts.

Run:  python examples/trace_workflow.py
"""

import os
import tempfile

from repro.asan import ASanRuntime
from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.trace import TraceApp, TraceRecorder, save_trace


def record_the_buggy_program(path: str) -> None:
    """An image decoder that trusts a declared row count."""
    process = SimProcess(seed=0)
    recorder = TraceRecorder(process)
    thread = process.main_thread
    decode = CallSite("IMGLIB.SO", "decode.c", 120, "decode_rows")
    alloc = CallSite("VIEWER", "load.c", 44, "load_image")

    with thread.call_stack.calling(alloc):
        rows = process.heap.malloc(thread, 128)  # room for 16 rows
    with thread.call_stack.calling(decode):
        for row in range(17):  # ...the file declares 17
            process.machine.cpu.store(thread, rows + row * 8, b"rowdata!")
    process.heap.free(thread, rows)
    recorder.detach()
    save_trace(recorder.events, path)
    print(f"recorded {len(recorder.events)} events -> {path}")


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="csod-trace-"), "viewer.json")
    record_the_buggy_program(path)
    app = TraceApp.from_file(path)

    # Replay 1: bare — the overflow happens silently.
    process = SimProcess(seed=1)
    app.run(process)
    print("\nreplay without a detector: program 'works', bug invisible")

    # Replay 2: CSOD — watchpoint report with both contexts.
    process = SimProcess(seed=2)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=2)
    app.run(process)
    csod.shutdown()
    print("\nreplay under CSOD:")
    print(csod.reports[0].render(process.symbols))

    # Replay 3: ASan — the decoder lives in an uninstrumented .SO.
    process = SimProcess(seed=3)
    asan = ASanRuntime(process.machine, process.heap)
    app.run(process)
    asan.shutdown()
    print(f"\nreplay under ASan (IMGLIB.SO uninstrumented): "
          f"detected={asan.detected}")


if __name__ == "__main__":
    main()
