#!/usr/bin/env python
"""The full triage pipeline: fleet -> cluster -> rank -> bisect -> DB.

A fleet campaign deduplicates reports by *exact* signature, but one bug
routinely produces several: libtiff's over-write is caught both by the
watchpoint (full access stack) and by the free-time canary check (no
access stack).  This demo runs two small fixed-seed campaigns (an
over-write and an over-read bug), clusters the jittered signatures into
one bug each, ranks them, bisects the top cluster down to a minimal
deterministic reproducer, and persists everything in a bug database
that a second campaign then re-confirms (status ``new`` ->
``reproduced``).

Run:  python examples/triage_pipeline.py
"""

import os
import tempfile

from repro.fleet.runner import run_fleet
from repro.triage import (
    BugDatabase,
    bisect_cluster,
    cluster_reports,
    rank_clusters,
    render_triage_report,
    to_sarif,
    validate_sarif,
)

APPS = ("libtiff", "zziplib")  # one over-write bug, one over-read bug
EXECUTIONS = 30


def campaign(db, campaign_id, seed_base=0):
    reports, executions = [], 0
    for app in APPS:
        fleet = run_fleet(app, executions=EXECUTIONS, seed_base=seed_base)
        reports.extend(fleet.aggregator.reports())
        executions += fleet.aggregator.executions_ok
        print(
            f"  {app}: {fleet.aggregator.executions_detected}/"
            f"{fleet.aggregator.executions_ok} executions detected, "
            f"{fleet.aggregator.unique_reports()} exact signature(s)"
        )
    clusters = cluster_reports(reports)
    update = db.update(
        clusters, campaign_id=campaign_id, total_executions=executions
    )
    print(
        f"  {len(reports)} signatures -> {update.clusters} clusters "
        f"({len(update.new)} new, {len(update.reproduced)} reproduced)"
    )
    return clusters, executions


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="csod-triage-") as tmp:
        db_path = os.path.join(tmp, "bugs.json")
        db = BugDatabase(db_path)

        print("=== Campaign 1: two apps, one bug each ===")
        clusters, executions = campaign(db, "nightly-1")

        print("\n=== Ranked triage queue ===")
        ranked = rank_clusters(clusters, total_executions=executions)
        print(render_triage_report(ranked, executions, db=db))

        print("\n=== Bisecting the top-ranked cluster ===")
        top = ranked[0].cluster
        repro = bisect_cluster(top, seed_checks=2)
        db.attach_repro(top.cluster_id, repro.to_dict())
        print(
            f"cluster {top.cluster_id}: verified={repro.verified} "
            f"seed_independent={repro.seed_independent}"
        )
        print(
            f"minimal spec: app={repro.app} seed={repro.seed} "
            f"evidence={len(repro.evidence)} scale={repro.scale} "
            f"({repro.executions} probe executions)"
        )
        for step in repro.steps:
            marker = "+" if step.triggered else "-"
            print(f"  [{marker}] {step.stage:13s} {step.description}")

        print("\n=== Campaign 2: same bugs re-confirmed ===")
        campaign(db, "nightly-2", seed_base=500)
        reloaded = BugDatabase(db_path)
        for entry in reloaded.entries():
            print(
                f"  {entry.cluster_id}: {entry.status}, "
                f"seen in {entry.campaigns_seen} campaigns, "
                f"{entry.occurrences} reports"
            )

        print("\n=== SARIF export ===")
        sarif = to_sarif(
            rank_clusters(reloaded.clusters(), reloaded.executions_total),
            db=reloaded,
        )
        errors = validate_sarif(sarif)
        print(
            f"SARIF 2.1.0 document: {len(sarif['runs'][0]['results'])} "
            f"results, validation errors: {errors or 'none'}"
        )


if __name__ == "__main__":
    main()
