#!/usr/bin/env python
"""Production-readiness report: overhead and memory vs AddressSanitizer.

Replays three representative workloads — allocation-hot (canneal),
context-rich (mysql), IO-bound (aget) — under CSOD and under the
simulated ASan baseline, then prints the normalized-runtime and
peak-memory comparison the paper's Fig. 7 / Table V make for all 19
applications.

Run:  python examples/overhead_report.py
"""

from repro.experiments.memory_usage import run_table5
from repro.experiments.performance import measure_app
from repro.experiments.tables import render_table

APPS = ("canneal", "mysql", "aget")


def main() -> None:
    rows = []
    for name in APPS:
        row = measure_app(name, sim_alloc_cap=4000)
        rows.append(
            [
                name,
                f"{row.csod_no_evidence:.3f}",
                f"{row.csod:.3f}",
                f"{row.asan_minimal:.3f}",
                f"{row.asan:.3f}",
            ]
        )
    print(render_table(
        ["App", "CSOD w/o evidence", "CSOD", "ASan min", "ASan"],
        rows,
        title="Normalized runtime (1.0 = default Linux)",
    ))
    print()

    mem_rows = []
    for entry in run_table5(apps=list(APPS)):
        f = entry.footprint
        mem_rows.append(
            [
                entry.app,
                f"{f.original_kb:,.0f}",
                f"{f.csod_kb:,.0f} ({f.csod_percent:.0f}%)",
                f"{f.asan_kb:,.0f} ({f.asan_percent:.0f}%)",
            ]
        )
    print(render_table(
        ["App", "Original KB", "CSOD", "ASan"],
        mem_rows,
        title="Peak memory",
    ))
    print(
        "\nThe always-on argument: CSOD stays in single-digit overhead"
        "\nterritory because it pays per *allocation*; ASan pays per"
        "\n*memory access*, which is why the gap explodes on CPU-bound"
        "\ncode and vanishes on IO-bound tools."
    )


if __name__ == "__main__":
    main()
