#!/usr/bin/env python
"""Heartbleed, reproduced: an over-READ that canaries cannot see.

The Heartbleed bug (CVE-2014-0160) is a buffer over-read: the heartbeat
handler trusts the attacker-supplied length and `memcpy`s past the end
of the request buffer.  Write-side defenses (canaries, DoubleTake-style
evidence) are blind to it — nothing is corrupted.  CSOD's watchpoint on
the boundary word fires on the read itself.

This demo drives the synthetic Heartbleed workload (307 allocation
contexts, 5,403 allocations — the paper's Table III structure) until a
run detects, then prints the Fig. 6-style report and contrasts with
ASan.

Run:  python examples/heartbleed_demo.py
"""

from repro.asan import ASanRuntime
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def csod_run(seed: int):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=seed)
    app_for("heartbleed").run(process)
    csod.shutdown()
    return process, csod


def main() -> None:
    print("Simulating repeated executions of the vulnerable server...")
    detections = 0
    first_report = None
    first_symbols = None
    runs = 30
    for seed in range(runs):
        process, csod = csod_run(seed)
        if csod.detected_by_watchpoint:
            detections += 1
            if first_report is None:
                first_report = next(
                    r for r in csod.reports if r.source == "watchpoint"
                )
                first_symbols = process.symbols
    print(f"CSOD detected the over-read in {detections}/{runs} executions "
          f"(paper: ~36-40% per execution).\n")

    print("=== CSOD bug report (Fig. 6) ===")
    print(first_report.render(first_symbols))
    print()

    # ASan catches it too — OpenSSL was instrumented in the paper's
    # setup — but note that no canary/evidence scheme can: over-reads
    # corrupt nothing.
    process = SimProcess(seed=0)
    asan = ASanRuntime(process.machine, process.heap)
    app_for("heartbleed").run(process)
    asan.shutdown()
    print(f"ASan (instrumented OpenSSL) detects: {asan.detected}")

    _, csod = csod_run(0)
    canary_only = [r for r in csod.reports if r.source != "watchpoint"]
    print(f"Canary evidence reports for this over-read: {len(canary_only)} "
          "(over-reads never corrupt canaries)")


if __name__ == "__main__":
    main()
