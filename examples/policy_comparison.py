#!/usr/bin/env python
"""Replacement-policy comparison on one program (§III-C2 / §V-A1).

libdwarf allocates its overflowing object within the first four
allocations, then runs ~150 more allocations before the over-read
happens.  The three watchpoint replacement policies behave very
differently on this shape:

* naive  — never preempts: the victim's watchpoint survives -> 100%;
* random — fresh contexts can evict the victim while it waits;
* near-FIFO — the circular pointer sweeps the victim out similarly.

Run:  python examples/policy_comparison.py
"""

from repro.core import CSODConfig, CSODRuntime
from repro.experiments.tables import render_table
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for

POLICIES = ("naive", "random", "near_fifo")
RUNS = 80


def detection_rate(app_name: str, policy: str) -> float:
    app = app_for(app_name)
    hits = 0
    for seed in range(RUNS):
        process = SimProcess(seed=seed)
        csod = CSODRuntime(
            process.machine,
            process.heap,
            CSODConfig(replacement_policy=policy),
            seed=seed,
        )
        app.run(process)
        csod.shutdown()
        hits += csod.detected_by_watchpoint
    return hits / RUNS


def main() -> None:
    apps = ("libdwarf", "libhx", "memcached")
    rows = []
    for name in apps:
        rates = [detection_rate(name, policy) for policy in POLICIES]
        rows.append([name] + [f"{rate:.1%}" for rate in rates])
    print(render_table(
        ["Application"] + list(POLICIES),
        rows,
        title=f"Detection rate by replacement policy ({RUNS} runs each)",
    ))
    print(
        "\nReading: naive wins when the victim is allocated early and"
        "\nnothing is ever preempted — and scores zero when the victim"
        "\narrives after the watchpoints are taken (memcached)."
    )


if __name__ == "__main__":
    main()
