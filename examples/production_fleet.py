#!/usr/bin/env python
"""Crowdsourced detection: CSOD across a fleet of production machines.

The paper's deployment story (§I, §VI): a single execution detects an
overflow only probabilistically, but a program "executed repeatedly by a
large number of users" converges fast — and for over-writes, persisted
canary evidence makes every execution after the first miss a guaranteed
detection.

This demo simulates a fleet of users running a memcached-like service
(74 contexts, 442 allocations, late-allocated victim: the Table III
structure).  Each "user" is one seeded execution; evidence is shared the
way a crash-reporting backend would share it.

Run:  python examples/production_fleet.py
"""

import os
import tempfile

from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess
from repro.workloads.buggy import app_for


def run_user(seed: int, evidence_path=None):
    process = SimProcess(seed=seed)
    csod = CSODRuntime(
        process.machine,
        process.heap,
        CSODConfig(persistence_path=evidence_path),
        seed=seed,
    )
    app_for("memcached").run(process)
    csod.shutdown()
    return csod


def fleet(users: int, share_evidence: bool) -> list:
    evidence_path = None
    if share_evidence:
        evidence_path = os.path.join(
            tempfile.mkdtemp(prefix="csod-fleet-"), "evidence.json"
        )
    timeline = []
    for seed in range(users):
        csod = run_user(seed, evidence_path)
        timeline.append(csod.detected_by_watchpoint)
    return timeline


def first_detection(timeline) -> int:
    return next((i + 1 for i, hit in enumerate(timeline) if hit), -1)


def main() -> None:
    users = 60

    without = fleet(users, share_evidence=False)
    with_sharing = fleet(users, share_evidence=True)

    print(f"fleet size: {users} users, one execution each\n")
    print("independent executions (no evidence sharing):")
    print(f"  detections: {sum(without)}/{users} "
          f"(per-execution rate ~{sum(without)/users:.0%})")
    print(f"  first detection at user #{first_detection(without)}\n")

    print("with shared canary evidence (the crowdsourcing setup):")
    print(f"  detections: {sum(with_sharing)}/{users}")
    print(f"  first detection at user #{first_detection(with_sharing)}")
    streak_start = first_detection(with_sharing)
    if streak_start > 0:
        tail = with_sharing[streak_start:]
        print(f"  users after the first evidence upload: "
              f"{sum(tail)}/{len(tail)} detected (guaranteed for over-writes)")

    print("\ncumulative probability of having caught the bug at least once:")
    miss_rate = 1 - sum(without) / users
    for n in (1, 5, 10, 20, 40):
        print(f"  after {n:>2} users: {1 - miss_rate ** n:.1%}")


if __name__ == "__main__":
    main()
