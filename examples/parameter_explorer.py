#!/usr/bin/env python
"""Explore CSOD's sampling knobs with the fast abstract model.

The full simulation executes heaps, syscalls, and canaries; when all you
want is "what would knob X do to the detection rate of workload Y", the
abstract model (:mod:`repro.analysis`) replays only the sampling
mathematics and runs ~20x faster — fast enough to sweep a grid
interactively.

Run:  python examples/parameter_explorer.py
"""

from repro.analysis import estimate_detection_rate
from repro.core import CSODConfig
from repro.experiments.tables import render_table
from repro.workloads.buggy import app_for

WORKLOADS = ("heartbleed", "memcached", "zziplib")
RUNS = 200


def sweep_initial_probability():
    rows = []
    for initial in (0.05, 0.25, 0.5, 0.75, 0.95):
        config = CSODConfig(
            replacement_policy="random", initial_probability=initial
        )
        rates = [
            estimate_detection_rate(app_for(name).spec, config, runs=RUNS)
            for name in WORKLOADS
        ]
        rows.append([f"{initial:.2f}"] + [f"{r:.1%}" for r in rates])
    return rows


def sweep_age_threshold():
    rows = []
    for seconds in (2.0, 10.0, 60.0, 600.0):
        config = CSODConfig(
            replacement_policy="random", watchpoint_age_seconds=seconds
        )
        rates = [
            estimate_detection_rate(app_for(name).spec, config, runs=RUNS)
            for name in WORKLOADS
        ]
        rows.append([f"{seconds:.0f}s"] + [f"{r:.1%}" for r in rates])
    return rows


def main() -> None:
    print(render_table(
        ["initial prob"] + list(WORKLOADS),
        sweep_initial_probability(),
        title=f"Detection rate vs initial probability ({RUNS} abstract runs)",
    ))
    print()
    print(render_table(
        ["age threshold"] + list(WORKLOADS),
        sweep_age_threshold(),
        title="Detection rate vs watchpoint-ageing threshold (§III-C2)",
    ))
    print(
        "\nThe paper's defaults (50% initial, 10s ageing) sit near the"
        "\nsweet spot on all three late-victim workloads — which is the"
        "\nclaim of §III-B2: 'these numbers generally work well'."
    )


if __name__ == "__main__":
    main()
