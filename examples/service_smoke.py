#!/usr/bin/env python
"""Fleet-as-a-service smoke test: serve, submit, stream, verify.

Boots an in-process :class:`ServiceThread` (real HTTP on an ephemeral
port), batch-submits two concurrent campaigns — one hand-written app,
one generated oracle genome — follows the firehose event stream while
they run, then checks the service results byte-for-byte against
standalone ``run_fleet`` runs of the same submissions.

This is the CI end-to-end gate for the service subsystem: if admission,
scheduling, streaming, or result assembly drift, the byte-identity or
event-count assertions below fail.

Run:  python examples/service_smoke.py
"""

import json
import tempfile
from pathlib import Path

from repro.fleet.runner import run_fleet
from repro.service import (
    CampaignSubmission,
    ServiceClient,
    ServiceThread,
)
from repro.triage.bugdb import BugDatabase

SUBMISSIONS = [
    CampaignSubmission(app="gzip", executions=16, workers=2, seed=3),
    CampaignSubmission(app="oracle:s7:i0:over-write", executions=12, seed=1),
]


def standalone_aggregate(submission: CampaignSubmission) -> dict:
    result = run_fleet(
        submission.app,
        executions=submission.executions,
        workers=submission.workers,
        policy=submission.policy,
        share_evidence=submission.share_evidence,
        seed_base=submission.seed,
        timeout_seconds=submission.timeout_seconds,
        chunk_size=submission.chunk_size,
        wave_size=submission.effective_wave_size(),
    )
    return result.aggregator.to_dict()


def main() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    event_log = out_dir / "service-events.jsonl"
    bug_db = BugDatabase(str(out_dir / "bugs.json"))

    print(f"[smoke] artifacts in {out_dir}")
    with ServiceThread(
        total_workers=2, bug_db=bug_db, event_log_path=str(event_log)
    ) as thread:
        client = ServiceClient(port=thread.port)
        health = client.health()
        print(
            f"[smoke] service up on port {thread.port} "
            f"(workers_total={health['workers_total']})"
        )

        jobs = client.submit_batch(SUBMISSIONS)
        job_ids = [job["job_id"] for job in jobs]
        for job in jobs:
            print(f"[smoke] queued {job['job_id']} ({job['submission']['app']})")

        # Follow the firehose until both jobs reach a final state,
        # counting what streams by.
        counts = {"wave": 0, "result": 0, "bug_new": 0}
        finished = set()
        since = 0
        while len(finished) < len(job_ids):
            events, since = client.poll_events("firehose", since, timeout=5.0)
            for event in events:
                kind = event["event"]
                if kind in counts:
                    counts[kind] += 1
                if kind == "bug_new":
                    print(
                        f"[smoke] new bug streamed live: "
                        f"{event['cluster_id']} [{event['kind']}] "
                        f"({event['job_id']})"
                    )
                if kind == "job" and event.get("state") in (
                    "completed",
                    "failed",
                    "cancelled",
                ):
                    finished.add(event["job_id"])
                    print(f"[smoke] {event['job_id']} -> {event['state']}")

        results = {job_id: client.result(job_id) for job_id in job_ids}

    # --- Verification --------------------------------------------------
    expected_waves = sum(
        -(-s.executions // s.effective_wave_size()) for s in SUBMISSIONS
    )
    assert counts["wave"] == expected_waves, (
        f"expected {expected_waves} wave events, streamed {counts['wave']}"
    )
    assert counts["result"] == len(SUBMISSIONS)
    assert counts["bug_new"] >= 1, "no bug_new event streamed before completion"

    for job_id, submission in zip(job_ids, SUBMISSIONS):
        service_doc = json.dumps(
            results[job_id]["aggregate"], sort_keys=True
        )
        standalone_doc = json.dumps(
            standalone_aggregate(submission), sort_keys=True
        )
        assert service_doc == standalone_doc, (
            f"{job_id}: service aggregate diverged from standalone run_fleet"
        )
        scorecard = results[job_id]["scorecard"]
        print(
            f"[smoke] {job_id}: {scorecard['executions']} executions, "
            f"detection_rate={scorecard['detection_rate']:.2f}, "
            f"dedup_ratio={scorecard['dedup_ratio']:.2f} — byte-identical "
            f"to standalone"
        )

    log_lines = [
        json.loads(line)
        for line in event_log.read_text().splitlines()
        if line.strip()
    ]
    kinds = {entry["service_event"] for entry in log_lines}
    assert {"job", "wave", "result", "bug_new"} <= kinds, (
        f"event log missing kinds: {kinds}"
    )
    print(
        f"[smoke] event log replayable: {len(log_lines)} events "
        f"({len(kinds)} kinds) at {event_log}"
    )
    print("[smoke] OK")


if __name__ == "__main__":
    main()
