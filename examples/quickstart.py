#!/usr/bin/env python
"""Quickstart: catch a one-line heap overflow with CSOD.

A tiny simulated program allocates a 64-byte buffer and then writes one
word past its end.  CSOD — preloaded into the process exactly like the
real tool is LD_PRELOADed — installs a hardware watchpoint on the
boundary word and reports the root cause with both calling contexts.

Run:  python examples/quickstart.py
"""

from repro.callstack.frames import CallSite
from repro.core import CSODConfig, CSODRuntime
from repro.workloads.base import SimProcess


def main() -> None:
    # 1. A simulated process: machine + heap + symbol table.
    process = SimProcess(seed=1)

    # 2. Preload CSOD (the LD_PRELOAD moment).  Four hardware
    #    watchpoints, near-FIFO replacement, evidence canaries on.
    csod = CSODRuntime(process.machine, process.heap, CSODConfig(), seed=1)

    # 3. The buggy "program": allocate 64 bytes, write 72.
    make_buffer = CallSite("DEMO", "buffer.c", 12, "make_buffer")
    copy_input = CallSite("DEMO", "copy.c", 34, "copy_input")
    process.symbols.add_all([make_buffer, copy_input])
    thread = process.main_thread

    with thread.call_stack.calling(make_buffer):
        buffer = process.heap.malloc(thread, 64)

    with thread.call_stack.calling(copy_input):
        payload = b"A" * 72  # 8 bytes too many
        process.machine.cpu.store(thread, buffer, payload[:64])
        process.machine.cpu.store(thread, buffer + 64, payload[64:])  # boom

    process.heap.free(thread, buffer)
    csod.shutdown()

    # 4. The report: faulting statement + allocation site, no false
    #    positives, no manual effort.
    assert csod.detected_by_watchpoint
    for report in csod.reports:
        print(report.render(process.symbols))
        print()
    stats = csod.stats()
    print(f"(allocations={stats.allocations}, watched={stats.watched_times}, "
          f"traps={stats.traps_handled})")


if __name__ == "__main__":
    main()
